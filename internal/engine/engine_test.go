package engine

import (
	"testing"

	"legodb/internal/relational"
	"legodb/internal/sqlast"
	"legodb/internal/xschema"
)

func testCatalog(t *testing.T) *relational.Catalog {
	t.Helper()
	s := xschema.MustParseSchema(`
type IMDB = imdb[ Show{0,*}<#3> ]
type Show = show[ title[ String<#20,#3> ], year[ Integer ] ]`)
	cat, err := relational.Map(s)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestInsertAndIndexes(t *testing.T) {
	cat := testCatalog(t)
	db := NewDatabase(cat)
	show := db.Table("Show")
	for i := int64(1); i <= 3; i++ {
		id := show.NextID()
		row := make(Row, len(show.Def.Columns))
		row[show.ColumnIndex("Show_id")] = IntVal(id)
		row[show.ColumnIndex("title")] = StrVal("t")
		row[show.ColumnIndex("year")] = IntVal(1990 + i)
		row[show.ColumnIndex("parent_IMDB")] = IntVal(1)
		if err := show.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(show.Rows); got != 3 {
		t.Fatalf("rows = %d", got)
	}
	positions, ok := show.Lookup("Show_id", IntVal(2))
	if !ok || len(positions) != 1 {
		t.Fatalf("id lookup = %v, %v", positions, ok)
	}
	positions, ok = show.Lookup("parent_IMDB", IntVal(1))
	if !ok || len(positions) != 3 {
		t.Fatalf("fk lookup = %v, %v", positions, ok)
	}
	if _, ok := show.Lookup("title", StrVal("t")); ok {
		t.Fatal("data column should not be indexed")
	}
	if err := show.Insert(Row{IntVal(9)}); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntVal(1), IntVal(2), -1},
		{IntVal(2), IntVal(2), 0},
		{StrVal("a"), StrVal("b"), -1},
		{Null, IntVal(0), -1},
		{IntVal(5), StrVal("5"), -1}, // kinds ordered: int before string
	}
	for _, c := range cases {
		got := Compare(c.a, c.b)
		switch {
		case c.want < 0 && got >= 0, c.want == 0 && got != 0, c.want > 0 && got <= 0:
			t.Errorf("Compare(%v, %v) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
}

func loadShows(t *testing.T, db *Database) {
	t.Helper()
	imdbT := db.Table("IMDB")
	row := make(Row, len(imdbT.Def.Columns))
	row[imdbT.ColumnIndex("IMDB_id")] = IntVal(imdbT.NextID())
	if err := imdbT.Insert(row); err != nil {
		t.Fatal(err)
	}
	show := db.Table("Show")
	data := []struct {
		title string
		year  int64
	}{{"Fugitive", 1993}, {"X Files", 1994}, {"Alien", 1994}}
	for _, d := range data {
		row := make(Row, len(show.Def.Columns))
		row[show.ColumnIndex("Show_id")] = IntVal(show.NextID())
		row[show.ColumnIndex("title")] = StrVal(d.title)
		row[show.ColumnIndex("year")] = IntVal(d.year)
		row[show.ColumnIndex("parent_IMDB")] = IntVal(1)
		if err := show.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExecuteFilterScan(t *testing.T) {
	db := NewDatabase(testCatalog(t))
	loadShows(t, db)
	b := &sqlast.Block{}
	b.AddTable("Show", "s")
	b.Filters = []sqlast.Filter{{
		Col:   sqlast.ColumnRef{Alias: "s", Column: "year"},
		Op:    sqlast.OpEq,
		Value: sqlast.Literal{IsInt: true, Int: 1994},
	}}
	b.Projects = []sqlast.ColumnRef{{Alias: "s", Column: "title"}}
	rs, err := db.ExecuteBlock(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestExecuteJoinINLThroughKey(t *testing.T) {
	// Show is filtered first; IMDB joins through its key column, which is
	// indexed, so the executor probes instead of scanning.
	db := NewDatabase(testCatalog(t))
	loadShows(t, db)
	b := &sqlast.Block{}
	b.AddTable("Show", "s")
	b.AddTable("IMDB", "i")
	b.Filters = []sqlast.Filter{{
		Col:   sqlast.ColumnRef{Alias: "s", Column: "title"},
		Op:    sqlast.OpEq,
		Value: sqlast.Literal{Str: "Fugitive"},
	}}
	b.Joins = []sqlast.Join{{
		Left:  sqlast.ColumnRef{Alias: "s", Column: "parent_IMDB"},
		Right: sqlast.ColumnRef{Alias: "i", Column: "IMDB_id"},
	}}
	b.Projects = []sqlast.ColumnRef{{Alias: "s", Column: "title"}}
	before := db.Stats
	rs, err := db.ExecuteBlock(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	if db.Stats.Probes <= before.Probes {
		t.Fatal("expected index probes when joining through the key")
	}
}

func TestExecuteJoinFKUsesHash(t *testing.T) {
	// Joining into Show through its FK column runs as a hash join (scan),
	// not probes, mirroring the optimizer's plan space.
	db := NewDatabase(testCatalog(t))
	loadShows(t, db)
	b := &sqlast.Block{}
	b.AddTable("IMDB", "i")
	b.AddTable("Show", "s")
	b.Joins = []sqlast.Join{{
		Left:  sqlast.ColumnRef{Alias: "s", Column: "parent_IMDB"},
		Right: sqlast.ColumnRef{Alias: "i", Column: "IMDB_id"},
	}}
	b.Projects = []sqlast.ColumnRef{{Alias: "s", Column: "title"}}
	before := db.Stats
	rs, err := db.ExecuteBlock(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	if db.Stats.Probes != before.Probes {
		t.Fatal("FK join should not probe")
	}
	if db.Stats.Scans != before.Scans+2 {
		t.Fatalf("expected two scans, got %d", db.Stats.Scans-before.Scans)
	}
}

func TestExecuteParamBinding(t *testing.T) {
	db := NewDatabase(testCatalog(t))
	loadShows(t, db)
	b := &sqlast.Block{}
	b.AddTable("Show", "s")
	b.Filters = []sqlast.Filter{{
		Col:   sqlast.ColumnRef{Alias: "s", Column: "title"},
		Op:    sqlast.OpEq,
		Value: sqlast.Literal{IsParam: true, Param: "c1"},
	}}
	b.Projects = []sqlast.ColumnRef{{Alias: "s", Column: "year"}}
	rs, err := db.ExecuteBlock(b, Params{"c1": StrVal("Alien")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].Int != 1994 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if _, err := db.ExecuteBlock(b, nil); err == nil {
		t.Fatal("missing parameter accepted")
	}
}

func TestExecuteRangeOps(t *testing.T) {
	db := NewDatabase(testCatalog(t))
	loadShows(t, db)
	ops := []struct {
		op   sqlast.CmpOp
		want int
	}{
		{sqlast.OpLt, 1}, {sqlast.OpLe, 3}, {sqlast.OpGt, 0},
		{sqlast.OpGe, 2}, {sqlast.OpNe, 1}, {sqlast.OpEq, 2},
	}
	for _, c := range ops {
		b := &sqlast.Block{}
		b.AddTable("Show", "s")
		b.Filters = []sqlast.Filter{{
			Col:   sqlast.ColumnRef{Alias: "s", Column: "year"},
			Op:    c.op,
			Value: sqlast.Literal{IsInt: true, Int: 1994},
		}}
		b.Projects = []sqlast.ColumnRef{{Alias: "s", Column: "title"}}
		rs, err := db.ExecuteBlock(b, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) != c.want {
			t.Errorf("op %v: rows = %d, want %d", c.op, len(rs.Rows), c.want)
		}
	}
}

func TestNullNeverMatches(t *testing.T) {
	db := NewDatabase(testCatalog(t))
	show := db.Table("Show")
	row := make(Row, len(show.Def.Columns))
	row[show.ColumnIndex("Show_id")] = IntVal(show.NextID())
	// title and year stay NULL.
	if err := show.Insert(row); err != nil {
		t.Fatal(err)
	}
	for _, op := range []sqlast.CmpOp{sqlast.OpEq, sqlast.OpNe, sqlast.OpLt} {
		b := &sqlast.Block{}
		b.AddTable("Show", "s")
		b.Filters = []sqlast.Filter{{
			Col:   sqlast.ColumnRef{Alias: "s", Column: "year"},
			Op:    op,
			Value: sqlast.Literal{IsInt: true, Int: 1990},
		}}
		rs, err := db.ExecuteBlock(b, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) != 0 {
			t.Errorf("op %v matched NULL", op)
		}
	}
}

func TestCountersAccumulate(t *testing.T) {
	db := NewDatabase(testCatalog(t))
	loadShows(t, db)
	b := &sqlast.Block{}
	b.AddTable("Show", "s")
	b.Projects = []sqlast.ColumnRef{{Alias: "s", Column: "title"}}
	if _, err := db.Execute(&sqlast.Query{Blocks: []*sqlast.Block{b}}, nil); err != nil {
		t.Fatal(err)
	}
	if db.Stats.Scans != 1 || db.Stats.TuplesRead != 3 || db.Stats.BytesRead <= 0 {
		t.Fatalf("counters = %+v", db.Stats)
	}
}

func TestExecuteErrors(t *testing.T) {
	db := NewDatabase(testCatalog(t))
	if _, err := db.ExecuteBlock(&sqlast.Block{}, nil); err == nil {
		t.Error("empty block accepted")
	}
	b := &sqlast.Block{}
	b.AddTable("NoSuch", "x")
	if _, err := db.ExecuteBlock(b, nil); err == nil {
		t.Error("unknown table accepted")
	}
	b2 := &sqlast.Block{}
	b2.AddTable("Show", "s")
	b2.Projects = []sqlast.ColumnRef{{Alias: "s", Column: "nosuch"}}
	loadShows(t, db)
	if _, err := db.ExecuteBlock(b2, nil); err == nil {
		t.Error("unknown projection column accepted")
	}
}
