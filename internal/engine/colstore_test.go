package engine_test

import (
	"strings"
	"testing"

	"legodb/internal/colfile"
	"legodb/internal/engine"
	"legodb/internal/imdb"
	"legodb/internal/relational"
	"legodb/internal/xquery"
)

// freezeDatabase round-trips every table of db through the colfile
// binary format — SnapshotColumns → Encode → Decode → NewColumnBase —
// and installs the decoded chunks as frozen bases in a fresh database,
// exactly as a reopened store snapshot serves them.
func freezeDatabase(t *testing.T, db *engine.Database, cat *relational.Catalog) *engine.Database {
	t.Helper()
	frozen := engine.NewDatabase(cat)
	for _, name := range cat.Order {
		src := db.Table(name)
		cols := make([]string, len(src.Def.Columns))
		for i, c := range src.Def.Columns {
			cols[i] = c.Name
		}
		ct := &colfile.Table{
			Name:    name,
			Columns: cols,
			Rows:    src.LiveRows(),
			NextID:  src.PeekNextID(),
			Cols:    src.SnapshotColumns(),
		}
		data, err := colfile.Encode(ct)
		if err != nil {
			t.Fatalf("encode %s: %v", name, err)
		}
		back, err := colfile.Decode(data)
		if err != nil {
			t.Fatalf("decode %s: %v", name, err)
		}
		base, err := engine.NewColumnBase(back.Cols, float64(back.DataBytes))
		if err != nil {
			t.Fatalf("base %s: %v", name, err)
		}
		dst := frozen.Table(name)
		if err := dst.SetColumnBase(base); err != nil {
			t.Fatalf("install %s: %v", name, err)
		}
		dst.SetNextID(back.NextID)
	}
	return frozen
}

// TestColumnBaseDifferentialIMDB extends the batch-vs-rows differential
// to columnar storage: the same workload corpus runs against the heap
// image and its colfile-frozen twin. Within each storage the two
// executors must agree bit-identically on results and counters; across
// storages the result multisets must match (the physical layout is
// invisible to answers — only IO accounting may shift, since frozen
// tables charge encoded bytes instead of catalog row-width estimates).
func TestColumnBaseDifferentialIMDB(t *testing.T) {
	for _, cfg := range diffConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			heap, ps, cat, matching, years := buildDiffDB(t, cfg, 11)
			frozen := freezeDatabase(t, heap, cat)
			// A hybrid tail: re-shredding is overkill — splice a few heap
			// rows behind the base by replaying rows of one table.
			hybrid := freezeDatabase(t, heap, cat)
			for _, name := range cat.Order {
				src, dst := heap.Table(name), hybrid.Table(name)
				n := src.NumRows()
				for pos := 0; pos < n && pos < 5; pos++ {
					row := append(engine.Row(nil), src.Row(pos)...)
					// Re-key the copy so index entries stay unique.
					row[0] = engine.IntVal(dst.NextID())
					if err := dst.Insert(row); err != nil {
						t.Fatalf("tail insert into %s: %v", name, err)
					}
				}
			}

			paramSets := []struct {
				name string
				p    engine.Params
			}{{"matching", matching}, {"years", years}}
			storages := []struct {
				name string
				db   *engine.Database
			}{{"heap", heap}, {"frozen", frozen}, {"hybrid", hybrid}}

			translated := 0
			for _, qn := range imdb.QueryNames() {
				sq, err := xquery.Translate(imdb.Query(qn), ps, cat)
				if err != nil {
					continue
				}
				translated++
				for _, pset := range paramSets {
					label := qn + "/" + pset.name
					var heapKeys, frozenKeys []string
					for _, st := range storages {
						st.db.Exec = engine.Options{}
						before := st.db.Stats
						rsB, errB := st.db.Execute(sq, pset.p)
						deltaB := statsDelta(st.db.Stats, before)

						st.db.Exec = engine.Options{RowAtATime: true}
						before = st.db.Stats
						rsR, errR := st.db.Execute(sq, pset.p)
						deltaR := statsDelta(st.db.Stats, before)

						if (errB != nil) != (errR != nil) {
							t.Fatalf("%s/%s: error mismatch: batch=%v rows=%v", label, st.name, errB, errR)
						}
						if errB != nil {
							continue
						}
						if deltaB != deltaR {
							t.Errorf("%s/%s: executor counters diverge:\n batch=%+v\n rows =%+v",
								label, st.name, deltaB, deltaR)
						}
						keys := rowMultiset(rsB)
						if kr := rowMultiset(rsR); strings.Join(keys, "\n") != strings.Join(kr, "\n") {
							t.Fatalf("%s/%s: executor results diverge", label, st.name)
						}
						switch st.name {
						case "heap":
							heapKeys = keys
						case "frozen":
							frozenKeys = keys
						}
					}
					if heapKeys != nil && frozenKeys != nil &&
						strings.Join(heapKeys, "\n") != strings.Join(frozenKeys, "\n") {
						t.Fatalf("%s: heap and frozen storages answer differently", label)
					}
				}
			}
			if translated < 10 {
				t.Fatalf("only %d queries translated — corpus too thin to be meaningful", translated)
			}

			// Deletions against the frozen base: tombstone a spread of
			// base rows and require the storages to stay in agreement.
			for _, name := range cat.Order {
				ht, ft := heap.Table(name), frozen.Table(name)
				for pos := 0; pos < ft.NumRows(); pos += 3 {
					ht.MarkDeleted(pos)
					ft.MarkDeleted(pos)
				}
			}
			for _, qn := range imdb.QueryNames() {
				sq, err := xquery.Translate(imdb.Query(qn), ps, cat)
				if err != nil {
					continue
				}
				heap.Exec = engine.Options{}
				frozen.Exec = engine.Options{}
				rsH, errH := heap.Execute(sq, matching)
				rsF, errF := frozen.Execute(sq, matching)
				if (errH != nil) != (errF != nil) {
					t.Fatalf("%s tombstoned: error mismatch: %v vs %v", qn, errH, errF)
				}
				if errH != nil {
					continue
				}
				if strings.Join(rowMultiset(rsH), "\n") != strings.Join(rowMultiset(rsF), "\n") {
					t.Fatalf("%s: tombstoned heap and frozen answer differently", qn)
				}
			}
		})
	}
}

// TestSetColumnBaseRules covers the installation contract: only an
// empty table accepts a base, column counts must match, and installing
// rebuilds indexes over the base rows.
func TestSetColumnBaseRules(t *testing.T) {
	heap, _, cat, _, _ := buildDiffDB(t, diffConfigs()[0], 3)
	name := cat.Order[0]
	src := heap.Table(name)
	base, err := engine.NewColumnBase(src.SnapshotColumns(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Non-empty table refuses.
	if err := src.SetColumnBase(base); err == nil {
		t.Error("non-empty table accepted a base")
	}
	fresh := engine.NewDatabase(cat)
	dst := fresh.Table(name)
	if err := dst.SetColumnBase(base); err != nil {
		t.Fatal(err)
	}
	if dst.NumRows() != src.LiveRows() {
		t.Fatalf("NumRows = %d, want %d", dst.NumRows(), src.LiveRows())
	}
	// The key index answers over base rows.
	key := dst.Def.Key()
	id := dst.Cell(0, dst.ColumnIndex(key))
	positions, ok := dst.Lookup(key, id)
	if !ok || len(positions) != 1 || positions[0] != 0 {
		t.Errorf("Lookup(%s, %v) = %v, %v", key, id, positions, ok)
	}
	// Cell and Row agree across the whole base.
	for pos := 0; pos < dst.NumRows(); pos++ {
		row := dst.Row(pos)
		for ci := range dst.Def.Columns {
			if row[ci] != dst.Cell(pos, ci) {
				t.Fatalf("row %d col %d: Row=%v Cell=%v", pos, ci, row[ci], dst.Cell(pos, ci))
			}
		}
	}
}
