package engine_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"legodb/internal/engine"
	"legodb/internal/imdb"
	"legodb/internal/pschema"
	"legodb/internal/relational"
	"legodb/internal/shred"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

// This file is the batch-vs-rows differential harness the batch executor
// ships with: for every storage configuration × workload query × binding
// it runs both executors on the same shredded IMDB data and requires
// identical results (as sorted multisets) and bit-identical Counters
// deltas. The query set is imdb.QueryNames(), the union of the fig10
// lookup/publish workloads (Q1..Q20) and the Section 2 / fig11 mixed
// workload queries (F1..F4). The corpus runs twice — once live, once
// after tombstoning rows in every table — so the dead-row paths of
// scans, probes and hash builds are differentially covered too.

// diffConfig names a storage configuration of the annotated schema.
type diffConfig struct {
	name string
	// shows sizes the generated document: the fully outlined
	// configuration multiplies intermediate results on the deep-join
	// queries (every element is its own relation), so it runs on a
	// smaller document to keep the reference executor's wall clock sane.
	shows int
	build func(*xschema.Schema) (*xschema.Schema, error)
}

func diffConfigs() []diffConfig {
	return []diffConfig{
		{"all-inlined", 30, pschema.AllInlined},
		{"all-outlined", 10, pschema.InitialOutlined},
		{"inlined-with-unions", 30, func(s *xschema.Schema) (*xschema.Schema, error) {
			return pschema.InitialInlined(s, pschema.InlineOptions{})
		}},
	}
}

// buildDiffDB generates an IMDB document, shreds it into the given
// configuration, and returns the database plus the document values the
// parameter bindings draw from.
func buildDiffDB(t *testing.T, cfg diffConfig, seed int64) (*engine.Database, *xschema.Schema, *relational.Catalog, engine.Params, engine.Params) {
	t.Helper()
	doc := imdb.Generate(imdb.GenOptions{Shows: cfg.shows, Seed: seed})
	s := imdb.Schema()
	if err := xstats.Annotate(s, xstats.Collect(doc)); err != nil {
		t.Fatal(err)
	}
	ps, err := cfg.build(s)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := relational.Map(ps)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDatabase(cat)
	if err := shred.New(ps, cat, db).Shred(doc); err != nil {
		t.Fatal(err)
	}

	title := doc.Path("show", "title")[0].Text
	year := doc.Path("show", "year")[0].Text
	name := ""
	if a := doc.Path("actor", "name"); len(a) > 0 {
		name = a[0].Text
	}
	gd := ""
	if g := doc.Path("show", "episodes", "guest_director"); len(g) > 0 {
		gd = g[0].Text
	}
	// Two binding sets: one aimed at matching document values (titles,
	// names), one binding everything to the year digits — which hits
	// year filters and exercises non-matching and mixed-kind paths on
	// the string-valued ones.
	matching := engine.Params{
		"c1": engine.StrVal(title),
		"c2": engine.StrVal(title),
		"c4": engine.StrVal(gd),
	}
	if name != "" {
		matching["c1"] = engine.StrVal(name)
	}
	years := engine.Params{
		"c1": engine.StrVal(year),
		"c2": engine.StrVal(year),
		"c4": engine.StrVal(year),
	}
	return db, ps, cat, matching, years
}

func rowMultiset(rs *engine.ResultSet) []string {
	keys := make([]string, len(rs.Rows))
	for i, r := range rs.Rows {
		var b strings.Builder
		for _, v := range r {
			switch v.Kind {
			case engine.NullValue:
				b.WriteString("|N")
			case engine.IntValue:
				fmt.Fprintf(&b, "|i%d", v.Int)
			default:
				b.WriteString("|s")
				b.WriteString(v.Str)
			}
		}
		keys[i] = b.String()
	}
	sort.Strings(keys)
	return keys
}

func statsDelta(after, before engine.Counters) engine.Counters {
	return engine.Counters{
		BytesRead:  after.BytesRead - before.BytesRead,
		TuplesRead: after.TuplesRead - before.TuplesRead,
		Probes:     after.Probes - before.Probes,
		Scans:      after.Scans - before.Scans,
		TuplesOut:  after.TuplesOut - before.TuplesOut,
	}
}

// TestBatchRowDifferentialIMDB fails on any divergence between the two
// executors: error presence/message, column list, row multiset, or any
// counter delta (compared bit-identically — both paths accumulate floats
// in the same order).
func TestBatchRowDifferentialIMDB(t *testing.T) {
	for _, cfg := range diffConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			db, ps, cat, matching, years := buildDiffDB(t, cfg, 7)
			paramSets := []struct {
				name string
				p    engine.Params
			}{{"matching", matching}, {"years", years}}

			checkQueries := func(t *testing.T) {
				translated := 0
				for _, qn := range imdb.QueryNames() {
					sq, err := xquery.Translate(imdb.Query(qn), ps, cat)
					if err != nil {
						// Not every query targets paths every configuration
						// exposes; the ones that translate are the corpus.
						continue
					}
					translated++
					for _, pset := range paramSets {
						db.Exec = engine.Options{}
						before := db.Stats
						rsB, errB := db.Execute(sq, pset.p)
						deltaB := statsDelta(db.Stats, before)

						db.Exec = engine.Options{RowAtATime: true}
						before = db.Stats
						rsR, errR := db.Execute(sq, pset.p)
						deltaR := statsDelta(db.Stats, before)

						label := qn + "/" + pset.name
						if (errB != nil) != (errR != nil) ||
							(errB != nil && errB.Error() != errR.Error()) {
							t.Fatalf("%s: error mismatch: batch=%v rows=%v", label, errB, errR)
						}
						if errB != nil {
							continue
						}
						if deltaB != deltaR {
							t.Errorf("%s: counters diverge:\n batch=%+v\n rows =%+v", label, deltaB, deltaR)
						}
						if strings.Join(rsB.Columns, ",") != strings.Join(rsR.Columns, ",") {
							t.Fatalf("%s: columns diverge: %v vs %v", label, rsB.Columns, rsR.Columns)
						}
						kb, kr := rowMultiset(rsB), rowMultiset(rsR)
						if len(kb) != len(kr) {
							t.Fatalf("%s: row counts diverge: batch=%d rows=%d", label, len(kb), len(kr))
						}
						for i := range kb {
							if kb[i] != kr[i] {
								t.Fatalf("%s: row multiset diverges at %d:\n batch %q\n rows  %q", label, i, kb[i], kr[i])
							}
						}
					}
				}
				if translated < 10 {
					t.Fatalf("only %d queries translated — corpus too thin to be meaningful", translated)
				}
			}

			t.Run("live", checkQueries)

			// Tombstone a spread of rows in every table and re-run: the
			// executors must also agree on dead-row skipping in scans,
			// index probes and hash builds.
			for _, name := range cat.Order {
				tb := db.Table(name)
				for pos := 0; pos < len(tb.Rows); pos += 3 {
					tb.MarkDeleted(pos)
				}
			}
			t.Run("tombstoned", checkQueries)
		})
	}
}
