package engine

import (
	"strconv"
	"strings"

	"legodb/internal/sqlast"
)

// BatchSize is the number of rows an operator processes per chunk. 1024
// keeps a chunk's gathered column (8 KB of int64s plus a 128-byte null
// bitmap) comfortably inside L1/L2 while amortizing per-chunk overhead
// over enough rows that the per-row cost is the loop body, not the
// bookkeeping.
const BatchSize = 1024

// mixedKind marks a Vector whose non-null values span more than one
// ValueKind; such vectors fall back to boxed Values.
const mixedKind ValueKind = -1

// Vector is one gathered column chunk: typed storage (int64 or string)
// with a null bitmap, promoted to boxed Values only if a column turns
// out to mix kinds (the shredder stores homogeneous columns, so the
// typed paths are the ones that run in practice). Element j of a Vector
// corresponds to element j of the selection it was gathered through.
type Vector struct {
	kind  ValueKind // NullValue until a non-null value is seen
	n     int
	ints  []int64
	strs  []string
	vals  []Value  // mixedKind fallback, sparse (nulls stay zero)
	nulls []uint64 // bitmap, bit set = NULL
}

func (v *Vector) reset(n int) {
	v.kind = NullValue
	v.n = n
	nw := (n + 63) / 64
	if cap(v.nulls) < nw {
		v.nulls = make([]uint64, nw)
	} else {
		v.nulls = v.nulls[:nw]
		clear(v.nulls)
	}
}

func (v *Vector) isNull(j int) bool { return v.nulls[j>>6]&(1<<(j&63)) != 0 }

func (v *Vector) set(j int, val Value) {
	if val.Kind == NullValue {
		v.nulls[j>>6] |= 1 << (j & 63)
		return
	}
	if v.kind == NullValue {
		v.kind = val.Kind
		switch val.Kind {
		case IntValue:
			if cap(v.ints) < v.n {
				v.ints = make([]int64, v.n)
			} else {
				v.ints = v.ints[:v.n]
				clear(v.ints)
			}
		case StrValue:
			if cap(v.strs) < v.n {
				v.strs = make([]string, v.n)
			} else {
				v.strs = v.strs[:v.n]
				clear(v.strs)
			}
		}
	}
	switch v.kind {
	case mixedKind:
		v.vals[j] = val
	case val.Kind:
		if v.kind == IntValue {
			v.ints[j] = val.Int
		} else {
			v.strs[j] = val.Str
		}
	default:
		v.promote()
		v.vals[j] = val
	}
}

// promote reboxes typed storage as Values when a mixed-kind column
// appears (possible only through direct Table.Insert; shredded data is
// homogeneous per column).
func (v *Vector) promote() {
	if cap(v.vals) < v.n {
		v.vals = make([]Value, v.n)
	} else {
		v.vals = v.vals[:v.n]
		clear(v.vals)
	}
	for j := 0; j < v.n; j++ {
		if v.isNull(j) {
			continue
		}
		if v.kind == IntValue {
			v.vals[j] = IntVal(v.ints[j])
		} else {
			v.vals[j] = StrVal(v.strs[j])
		}
	}
	v.kind = mixedKind
}

// value reboxes element j.
func (v *Vector) value(j int) Value {
	if v.isNull(j) {
		return Null
	}
	switch v.kind {
	case IntValue:
		return IntVal(v.ints[j])
	case StrValue:
		return StrVal(v.strs[j])
	case mixedKind:
		return v.vals[j]
	default:
		return Null
	}
}

// gather fills the vector with column ci of t's rows at the given
// positions. Base positions read the columnar chunks directly — typed
// storage to typed storage, no Row in between; heap positions read the
// row tail as before.
func (v *Vector) gather(t *Table, ci int, positions []int32) {
	v.reset(len(positions))
	if t.base == nil {
		rows := t.Rows
		for j, pos := range positions {
			v.set(j, rows[pos][ci])
		}
		return
	}
	col := t.base.cols[ci]
	br := t.base.rows
	for j, pos := range positions {
		p := int(pos)
		if p >= br {
			v.set(j, t.Rows[p-br][ci])
			continue
		}
		ch := &col[p/BatchSize]
		i := p % BatchSize
		switch {
		case ch.IsNull(i):
			v.nulls[j>>6] |= 1 << (j & 63)
		case ch.Ints != nil:
			v.set(j, Value{Kind: IntValue, Int: ch.Ints[i]})
		case ch.Strs != nil:
			v.set(j, Value{Kind: StrValue, Str: ch.Strs[i]})
		case ch.Vals != nil:
			v.set(j, ch.Vals[i])
		default:
			v.nulls[j>>6] |= 1 << (j & 63)
		}
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// cmpBytesStr compares a byte slice against a string without allocating
// (the formatted-integer side of a mixed int/string comparison).
func cmpBytesStr(b []byte, s string) int {
	n := min(len(b), len(s))
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	return len(b) - len(s)
}

// compactLiteral keeps sel[j] iff vector element j satisfies (op lit),
// compacting sel in place. The typed cases run tight loops over the
// unboxed storage; only genuinely mixed columns fall back to boxed
// satisfies.
func compactLiteral(v *Vector, op sqlast.CmpOp, lit Value, sel []int32) []int32 {
	w := 0
	switch {
	case lit.Kind == NullValue:
		// NULL satisfies nothing.
	case v.kind == IntValue && lit.Kind == IntValue:
		for j := range sel {
			if !v.isNull(j) && opHolds(op, cmpInt(v.ints[j], lit.Int)) {
				sel[w] = sel[j]
				w++
			}
		}
	case v.kind == IntValue && lit.Kind == StrValue:
		var buf [20]byte
		for j := range sel {
			if v.isNull(j) {
				continue
			}
			b := strconv.AppendInt(buf[:0], v.ints[j], 10)
			if opHolds(op, cmpBytesStr(b, lit.Str)) {
				sel[w] = sel[j]
				w++
			}
		}
	case v.kind == StrValue:
		s := lit.Str
		if lit.Kind == IntValue {
			s = lit.String()
		}
		for j := range sel {
			if !v.isNull(j) && opHolds(op, strings.Compare(v.strs[j], s)) {
				sel[w] = sel[j]
				w++
			}
		}
	default:
		// All-null or mixed-kind column.
		for j := range sel {
			if satisfies(v.value(j), op, lit) {
				sel[w] = sel[j]
				w++
			}
		}
	}
	return sel[:w]
}

// pairSatisfies evaluates element j of two aligned vectors under op with
// satisfies semantics (NULL never matches, integers coerce to strings
// against string values).
func pairSatisfies(l, r *Vector, j int, op sqlast.CmpOp) bool {
	if l.isNull(j) || r.isNull(j) {
		return false
	}
	switch {
	case l.kind == IntValue && r.kind == IntValue:
		return opHolds(op, cmpInt(l.ints[j], r.ints[j]))
	case l.kind == StrValue && r.kind == StrValue:
		return opHolds(op, strings.Compare(l.strs[j], r.strs[j]))
	case l.kind == IntValue && r.kind == StrValue:
		var buf [20]byte
		return opHolds(op, cmpBytesStr(strconv.AppendInt(buf[:0], l.ints[j], 10), r.strs[j]))
	case l.kind == StrValue && r.kind == IntValue:
		var buf [20]byte
		return opHolds(op, -cmpBytesStr(strconv.AppendInt(buf[:0], r.ints[j], 10), l.strs[j]))
	default:
		return satisfies(l.value(j), op, r.value(j))
	}
}

// compactPair keeps sel[j] iff pairSatisfies(l, r, j, op), compacting
// sel in place.
func compactPair(l, r *Vector, op sqlast.CmpOp, sel []int32) []int32 {
	w := 0
	for j := range sel {
		if pairSatisfies(l, r, j, op) {
			sel[w] = sel[j]
			w++
		}
	}
	return sel[:w]
}

// hashTable is a typed hash-join build over one column of a table:
// int64 or string keys map to build-side row positions, with NULL keys
// in their own bucket (Value-map semantics of the reference executor:
// exact-kind matching, NULL probe matches NULL build rows). A build
// column mixing kinds falls back to a boxed Value map.
type hashTable struct {
	kind  ValueKind
	ints  map[int64][]int32
	strs  map[string][]int32
	nullP []int32
	mixed map[Value][]int32
}

// buildHash builds the table over column ci of t at the given positions.
func buildHash(t *Table, ci int, positions []int32) *hashTable {
	ht := &hashTable{kind: NullValue}
	for _, pos := range positions {
		v := t.Cell(int(pos), ci)
		if ht.kind != mixedKind {
			switch v.Kind {
			case NullValue:
				ht.nullP = append(ht.nullP, pos)
				continue
			case ht.kind:
				// Same kind as established; fall through to insert.
			default:
				if ht.kind == NullValue {
					ht.kind = v.Kind
					if v.Kind == IntValue {
						ht.ints = make(map[int64][]int32, len(positions))
					} else {
						ht.strs = make(map[string][]int32, len(positions))
					}
				} else {
					ht.demote(t, ci)
				}
			}
		}
		switch ht.kind {
		case IntValue:
			ht.ints[v.Int] = append(ht.ints[v.Int], pos)
		case StrValue:
			ht.strs[v.Str] = append(ht.strs[v.Str], pos)
		case mixedKind:
			ht.mixed[v] = append(ht.mixed[v], pos)
		}
	}
	return ht
}

// demote reboxes a typed build into a Value map when the build column
// mixes kinds.
func (ht *hashTable) demote(t *Table, ci int) {
	ht.mixed = make(map[Value][]int32)
	for k, p := range ht.ints {
		ht.mixed[IntVal(k)] = p
	}
	for k, p := range ht.strs {
		ht.mixed[StrVal(k)] = p
	}
	for _, pos := range ht.nullP {
		ht.mixed[Null] = append(ht.mixed[Null], pos)
	}
	ht.ints, ht.strs, ht.nullP = nil, nil, nil
	ht.kind = mixedKind
}

// lookup returns the build positions matching probe value v. Matching is
// exact (no cross-kind coercion): a string probe never matches an
// integer build key, and NULL matches the NULL bucket — both exactly as
// the reference executor's map[Value] build behaves.
func (ht *hashTable) lookup(v Value) []int32 {
	switch ht.kind {
	case IntValue:
		if v.Kind == IntValue {
			return ht.ints[v.Int]
		}
		if v.Kind == NullValue {
			return ht.nullP
		}
	case StrValue:
		if v.Kind == StrValue {
			return ht.strs[v.Str]
		}
		if v.Kind == NullValue {
			return ht.nullP
		}
	case mixedKind:
		return ht.mixed[v]
	case NullValue:
		// Empty build.
		if v.Kind == NullValue {
			return ht.nullP
		}
	}
	return nil
}
