// Package engine is an instrumented in-memory relational execution
// substrate: heap tables over the catalogs produced by the fixed mapping,
// hash indexes on key and foreign-key columns, and an iterator executor
// for the SPJ blocks the XQuery translator emits.
//
// The paper validated its cost model against Microsoft SQL-Server 6.5;
// this engine plays that role here (see DESIGN.md): it counts the same
// quantities the cost model predicts — bytes read, probes, tuples
// processed — so estimates and measurements can be compared.
//
// A Database supports concurrent query execution against stable data:
// Execute/ExecuteContext from multiple goroutines are safe with each
// other (counters accrue execution-locally and fold into Stats under an
// internal mutex), but callers must serialize mutations — inserts,
// tombstones, executor-mode flips — against in-flight queries. The Store
// facade does exactly that with a readers-writer lock.
package engine

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"legodb/internal/relational"
)

// Value is a nullable scalar cell. The zero value is NULL. Values are
// comparable, so they key hash indexes directly.
type Value struct {
	Kind ValueKind
	Int  int64
	Str  string
}

// ValueKind discriminates Value contents.
type ValueKind int

// Value kinds.
const (
	NullValue ValueKind = iota
	IntValue
	StrValue
)

// IntVal makes an integer value.
func IntVal(v int64) Value { return Value{Kind: IntValue, Int: v} }

// StrVal makes a string value.
func StrVal(s string) Value { return Value{Kind: StrValue, Str: s} }

// Null is the NULL value.
var Null = Value{}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == NullValue }

func (v Value) String() string {
	switch v.Kind {
	case IntValue:
		return strconv.FormatInt(v.Int, 10)
	case StrValue:
		return v.Str
	default:
		return "NULL"
	}
}

// Compare orders two values: NULL sorts first, integers before strings.
func Compare(a, b Value) int {
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	switch a.Kind {
	case IntValue:
		switch {
		case a.Int < b.Int:
			return -1
		case a.Int > b.Int:
			return 1
		}
		return 0
	case StrValue:
		return strings.Compare(a.Str, b.Str)
	default:
		return 0
	}
}

// Row is one tuple.
type Row []Value

// Table is a heap relation with hash indexes on its key and foreign-key
// columns, optionally frozen over a columnar base image (see
// colstore.go). Row positions are global — base rows first, then the
// heap tail in Rows — and deletes are tombstones: positions stay
// stable, dead rows are skipped by scans, probes and snapshots.
type Table struct {
	Def *relational.Table
	// Rows is the mutable heap tail; with a columnar base attached,
	// Rows[i] is global position baseRows()+i. Executors go through
	// NumRows/Cell/Row so both storage layouts serve transparently.
	Rows   []Row
	base   *ColumnBase
	colIdx map[string]int
	// indexes maps indexed column name to value → global row positions.
	indexes map[string]map[Value][]int
	nextID  int64
	dead    map[int]bool
}

// NewTable builds an empty heap table for a catalog relation.
func NewTable(def *relational.Table) *Table {
	t := &Table{
		Def:     def,
		colIdx:  make(map[string]int, len(def.Columns)),
		indexes: make(map[string]map[Value][]int),
		nextID:  1,
	}
	for i, c := range def.Columns {
		t.colIdx[c.Name] = i
		if c.Key || c.FKRef != "" {
			t.indexes[c.Name] = make(map[Value][]int)
		}
	}
	return t
}

// ColumnIndex returns the position of a column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// NextID allocates a fresh surrogate key.
func (t *Table) NextID() int64 {
	id := t.nextID
	t.nextID++
	return id
}

// PeekNextID returns the next key without allocating it (used by
// snapshots).
func (t *Table) PeekNextID() int64 { return t.nextID }

// SetNextID restores the key allocator (used when loading snapshots).
func (t *Table) SetNextID(id int64) {
	if id > t.nextID {
		t.nextID = id
	}
}

// Insert appends a row (len must equal the column count) and maintains
// indexes.
func (t *Table) Insert(r Row) error {
	if len(r) != len(t.Def.Columns) {
		return fmt.Errorf("engine: %s: row has %d values, table has %d columns",
			t.Def.Name, len(r), len(t.Def.Columns))
	}
	pos := t.NumRows()
	t.Rows = append(t.Rows, r)
	for col, idx := range t.indexes {
		v := r[t.colIdx[col]]
		idx[v] = append(idx[v], pos)
	}
	return nil
}

// Lookup returns the positions of live rows whose column equals v, using
// the index when available (second result true) and nil otherwise. The
// returned slice aliases the index when no listed position is dead —
// the hot case on probe-heavy plans — so callers must not mutate it; a
// fresh slice is allocated only when tombstones actually filter.
func (t *Table) Lookup(col string, v Value) ([]int, bool) {
	idx, ok := t.indexes[col]
	if !ok {
		return nil, false
	}
	positions := idx[v]
	if len(t.dead) == 0 {
		return positions, true
	}
	dead := 0
	for _, p := range positions {
		if t.dead[p] {
			dead++
		}
	}
	if dead == 0 {
		return positions, true
	}
	live := make([]int, 0, len(positions)-dead)
	for _, p := range positions {
		if !t.dead[p] {
			live = append(live, p)
		}
	}
	return live, true
}

// Alive reports whether the row at pos has not been deleted.
func (t *Table) Alive(pos int) bool { return !t.dead[pos] }

// MarkDeleted tombstones the row at pos (idempotent).
func (t *Table) MarkDeleted(pos int) {
	if pos < 0 || pos >= t.NumRows() {
		return
	}
	if t.dead == nil {
		t.dead = make(map[int]bool)
	}
	t.dead[pos] = true
}

// LiveRows counts rows that are not tombstoned.
func (t *Table) LiveRows() int { return t.NumRows() - len(t.dead) }

// Counters accumulates the execution measurements compared against the
// optimizer's estimates.
type Counters struct {
	BytesRead  float64
	TuplesRead int64
	Probes     int64
	Scans      int64
	TuplesOut  int64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.BytesRead += other.BytesRead
	c.TuplesRead += other.TuplesRead
	c.Probes += other.Probes
	c.Scans += other.Scans
	c.TuplesOut += other.TuplesOut
}

// Options selects the executor implementation. The zero value runs the
// vectorized batch executor (columnar position vectors flowing through
// scan/filter/join/project operators in chunks of BatchSize rows).
type Options struct {
	// RowAtATime runs the original per-tuple iterator over binding maps
	// instead — kept as the reference implementation for differential
	// tests and as the baseline the batch executor's speedup is measured
	// against. Both executors run the same physical plan and maintain
	// identical Counters.
	RowAtATime bool
}

// Database is a set of tables instantiating one relational catalog.
type Database struct {
	Cat    *relational.Catalog
	Tables map[string]*Table
	// Stats counts work done by Execute calls. Executions accrue into a
	// local Counters and fold in once under statsMu; concurrent readers
	// should use Measured instead of the field.
	Stats Counters
	// Exec selects the executor implementation for Execute/ExecuteBlock.
	Exec Options

	statsMu sync.Mutex
}

// addStats folds one execution's counters into the database totals.
func (db *Database) addStats(c Counters) {
	db.statsMu.Lock()
	db.Stats.Add(c)
	db.statsMu.Unlock()
}

// Measured snapshots the accumulated execution counters; unlike reading
// Stats directly, it is safe against concurrent executions.
func (db *Database) Measured() Counters {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	return db.Stats
}

// NewDatabase creates empty tables for every relation in the catalog.
func NewDatabase(cat *relational.Catalog) *Database {
	db := &Database{Cat: cat, Tables: make(map[string]*Table, len(cat.Order))}
	for _, name := range cat.Order {
		db.Tables[name] = NewTable(cat.Tables[name])
	}
	return db
}

// Table returns the named table, or nil.
func (db *Database) Table(name string) *Table { return db.Tables[name] }

// RowCount sums live rows over all tables.
func (db *Database) RowCount() int {
	total := 0
	for _, t := range db.Tables {
		total += t.LiveRows()
	}
	return total
}

// String summarizes table sizes.
func (db *Database) String() string {
	var b strings.Builder
	for _, name := range db.Cat.Order {
		fmt.Fprintf(&b, "%-24s %8d rows\n", name, db.Tables[name].NumRows())
	}
	return b.String()
}
