package adapt

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"legodb"
	"legodb/internal/faults"
	"legodb/internal/imdb"
	"legodb/internal/xquery"
)

const (
	lookupQ  = `FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/year`
	publishQ = `FOR $v IN imdb/show RETURN $v`
)

// fixture opens an all-inlined store (advised baseline: the publish
// workload) and returns the engine, store and a ready controller.
func fixture(t *testing.T, cfg Config) (*legodb.Engine, *legodb.Store, *Controller) {
	t.Helper()
	eng, err := legodb.New(imdb.SchemaText)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetStatisticsText(imdb.StatsText); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddQuery("pub", publishQ, 1); err != nil {
		t.Fatal(err)
	}
	advice, err := eng.EvaluateFixed("all-inlined")
	if err != nil {
		t.Fatal(err)
	}
	store, err := advice.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Load(imdb.Generate(imdb.GenOptions{Shows: 30, Seed: 11})); err != nil {
		t.Fatal(err)
	}
	baseline := (&xquery.Workload{}).Add(xquery.MustParse(publishQ), 1)
	return eng, store, New(eng, store, baseline, cfg)
}

func serveLookups(t *testing.T, store *legodb.Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := store.Query(lookupQ, legodb.Params{"c1": fmt.Sprint(1990 + i%20)}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckGates walks the hysteresis ladder: no traffic, too few
// observations, drift below threshold — none may reach the search.
func TestCheckGates(t *testing.T) {
	_, store, ctrl := fixture(t, Config{})

	d, err := ctrl.Check(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if d.ReAdvised || d.Reason != "no observed traffic" {
		t.Errorf("idle check: %+v", d)
	}

	serveLookups(t, store, 5) // drifted, but below MinObservations
	d, err = ctrl.Check(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if d.ReAdvised || d.Reason != "too few observations" {
		t.Errorf("sparse check: %+v", d)
	}
	if d.Drift != 1 {
		t.Errorf("disjoint traffic drift = %v, want 1", d.Drift)
	}

	// Flood with the baseline's own shape: plenty of observations, no
	// drift (the lookups fade to a small minority share).
	for i := 0; i < 200; i++ {
		if _, err := store.Query(publishQ, nil); err != nil {
			t.Fatal(err)
		}
	}
	d, err = ctrl.Check(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if d.ReAdvised || d.Reason != "drift below threshold" {
		t.Errorf("stable check: %+v", d)
	}
	if d.Drift >= 0.25 {
		t.Errorf("stable traffic drift = %v", d.Drift)
	}
	if s := ctrl.Stats(); s.Checks != 3 || s.ReAdvises != 0 || s.Migrations != 0 {
		t.Errorf("stats after gated checks: %+v", s)
	}
}

// TestCheckMigratesOnDrift drives drifted traffic past the gates and
// expects the full loop: re-advise, margin cleared, live migration,
// baseline reset (so the next check is quiet).
func TestCheckMigratesOnDrift(t *testing.T) {
	_, store, ctrl := fixture(t, Config{})
	prePS := store.PSchema()
	serveLookups(t, store, 64)

	d, err := ctrl.Check(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !d.ReAdvised {
		t.Fatalf("drifted check did not re-advise: %+v", d)
	}
	if !d.Migrated {
		t.Fatalf("re-advised configuration did not migrate (reason %q, cost %v -> %v)",
			d.Reason, d.CurrentCost, d.NewCost)
	}
	if d.NewCost >= d.CurrentCost {
		t.Errorf("migrated without a cost win: %v -> %v", d.CurrentCost, d.NewCost)
	}
	if d.Migration == nil || d.Migration.Groups == 0 {
		t.Errorf("missing migration report: %+v", d.Migration)
	}
	if store.PSchema() == prePS {
		t.Error("store still serves the old configuration")
	}
	// Queries keep working on the migrated image.
	serveLookups(t, store, 4)

	// The observed workload that won is the new baseline: an immediate
	// re-check under the same traffic must be quiet.
	d, err = ctrl.Check(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if d.ReAdvised || d.Migrated {
		t.Errorf("post-migration check churned: %+v", d)
	}
	if s := ctrl.Stats(); s.Migrations != 1 || s.ReAdvises != 1 {
		t.Errorf("stats: %+v", s)
	}
}

// TestForceBypassesGatesNotMargin: a forced check on a store already
// serving the configuration advised for its traffic must re-advise but
// refuse to migrate.
func TestForceBypassesGatesNotMargin(t *testing.T) {
	eng, store, ctrl := fixture(t, Config{})
	serveLookups(t, store, 64)
	// First forced check migrates to the lookup-advised configuration.
	d, err := ctrl.Check(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Migrated {
		t.Fatalf("forced check on drifted store did not migrate: %+v", d)
	}
	// Second forced check: same traffic, config already optimal for it.
	serveLookups(t, store, 8)
	d, err = ctrl.Check(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !d.ReAdvised {
		t.Errorf("force must always reach the search: %+v", d)
	}
	if d.Migrated {
		t.Errorf("forced check migrated without a margin win: %+v", d)
	}
	if !strings.Contains(d.Reason, "margin") && !strings.Contains(d.Reason, "already installed") {
		t.Errorf("unexpected reason %q", d.Reason)
	}
	_ = eng
}

// TestForcedCheckWithNoTraffic stays quiet even under force: there is
// nothing to advise against.
func TestForcedCheckWithNoTraffic(t *testing.T) {
	_, _, ctrl := fixture(t, Config{})
	d, err := ctrl.Check(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if d.ReAdvised || d.Reason != "no observed traffic" {
		t.Errorf("forced idle check: %+v", d)
	}
}

// TestCheckSurvivesAbortedMigration: an injected migration fault surfaces
// as an error, the store keeps serving the old configuration, and the
// migration counter stays put.
func TestCheckSurvivesAbortedMigration(t *testing.T) {
	_, store, ctrl := fixture(t, Config{})
	prePS := store.PSchema()
	serveLookups(t, store, 64)

	defer faults.Enable(faults.SiteMigrate, 1, false)()
	d, err := ctrl.Check(context.Background(), false)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want injected fault, got %v (decision %+v)", err, d)
	}
	if d.Migrated || d.Reason != "migration aborted" {
		t.Errorf("decision after aborted migration: %+v", d)
	}
	if store.PSchema() != prePS {
		t.Error("aborted migration changed the configuration")
	}
	if s := ctrl.Stats(); s.Migrations != 0 {
		t.Errorf("aborted migration counted: %+v", s)
	}
	// The fault is spent: the next check completes the migration.
	d, err = ctrl.Check(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Migrated {
		t.Errorf("retry after aborted migration: %+v", d)
	}
}
