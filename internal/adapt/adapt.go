// Package adapt closes the advisor loop: it watches a serving store's
// observed workload, detects drift against the workload the store was
// advised for, re-runs the budgeted anytime search in the background
// when drift clears a hysteresis threshold, and migrates the store live
// when the winning configuration beats the installed one by a
// configurable cost margin.
//
// The controller runs entirely off the serving path. Observation is
// lock-free with respect to serving (the store records shapes outside
// its readers-writer lock), the search runs against a snapshot of the
// observed workload through the engine's shared cost cache, and the
// migration only contends with traffic for one write-lock cutover swap.
//
// Hysteresis has two gates so noise never triggers churn: a minimum
// observation count (a handful of requests is not a workload) and a
// drift threshold (total variation distance in [0, 1]). Even past both
// gates, nothing migrates unless the re-advised configuration's
// estimated cost beats the installed configuration's — priced under the
// *observed* workload — by the margin.
package adapt

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"legodb"
	"legodb/internal/core"
	"legodb/internal/xquery"
)

// Config tunes a Controller; the zero value uses the defaults noted per
// field.
type Config struct {
	// DriftThreshold is the minimum drift score (total variation
	// distance, [0, 1]) before a re-advise is considered (default 0.25).
	DriftThreshold float64
	// MinObservations is the minimum number of recorded observations
	// before drift is acted on (default 32).
	MinObservations uint64
	// CostMargin is the fraction by which a re-advised configuration's
	// estimated cost must beat the installed one before migrating
	// (default 0.05).
	CostMargin float64
	// SearchTimeout bounds the background search's wall-clock time; the
	// anytime search returns its best-so-far on expiry (default 5s).
	SearchTimeout time.Duration
	// MaxEvaluations bounds the candidate configurations the background
	// search costs (0 = unbounded).
	MaxEvaluations int
	// TablesPerGroup is the migration's table-group size (0 = migrator
	// default).
	TablesPerGroup int
	// Documents overrides the stored document count used for costing
	// (0 = derive from the store).
	Documents float64
}

func (c Config) withDefaults() Config {
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.25
	}
	if c.MinObservations == 0 {
		c.MinObservations = 32
	}
	if c.CostMargin <= 0 {
		c.CostMargin = 0.05
	}
	if c.SearchTimeout <= 0 {
		c.SearchTimeout = 5 * time.Second
	}
	return c
}

// Controller binds one engine/store pair into an adaptation loop.
// Check is safe to call concurrently with serving traffic; concurrent
// Check calls serialize against each other (one background re-advise at
// a time).
type Controller struct {
	cfg   Config
	eng   *legodb.Engine
	store *legodb.Store

	mu       sync.Mutex // serializes Check; guards baseline
	baseline *xquery.Workload

	checks     atomic.Uint64
	readvises  atomic.Uint64
	migrations atomic.Uint64
	driftBits  atomic.Uint64 // math.Float64bits of the last drift score
}

// New builds a controller. advised is the workload the store's current
// configuration was chosen for — the drift baseline; after a successful
// migration the baseline resets to the observed workload that won.
func New(eng *legodb.Engine, store *legodb.Store, advised *xquery.Workload, cfg Config) *Controller {
	if advised == nil {
		advised = &xquery.Workload{}
	}
	return &Controller{cfg: cfg.withDefaults(), eng: eng, store: store, baseline: advised.Copy()}
}

// Decision reports one Check outcome.
type Decision struct {
	// Drift is the drift score between the baseline and observed
	// workloads at check time.
	Drift float64
	// Observations is the store's total recorded observation count.
	Observations uint64
	// ReAdvised is true when the background search ran.
	ReAdvised bool
	// Migrated is true when the store was migrated to a new
	// configuration.
	Migrated bool
	// CurrentCost and NewCost are the estimated costs of the installed
	// and re-advised configurations under the observed workload (set
	// when ReAdvised).
	CurrentCost float64
	NewCost     float64
	// Reason says what the check concluded.
	Reason string
	// Migration carries the migration report when Migrated.
	Migration *legodb.MigrateReport
}

// Check runs one control-loop pass: score drift, and when the hysteresis
// gates open (or force is true, the manual-trigger path), re-advise
// against the observed workload and migrate if the winner clears the
// cost margin. force bypasses the observation-count and drift gates but
// never the cost margin — a manual trigger still refuses a migration
// that would not pay.
func (c *Controller) Check(ctx context.Context, force bool) (Decision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.checks.Add(1)
	observed, n := c.store.ObservedWorkload()
	drift := core.DriftScore(c.baseline, observed)
	c.driftBits.Store(math.Float64bits(drift))
	d := Decision{Drift: drift, Observations: n}
	if len(observed.Entries) == 0 && len(observed.Updates) == 0 {
		d.Reason = "no observed traffic"
		return d, nil
	}
	if !force {
		if n < c.cfg.MinObservations {
			d.Reason = "too few observations"
			return d, nil
		}
		if drift < c.cfg.DriftThreshold {
			d.Reason = "drift below threshold"
			return d, nil
		}
	}
	docs := c.cfg.Documents
	if docs == 0 {
		docs = float64(c.store.Documents())
	}
	if docs == 0 {
		docs = 1
	}
	current, err := c.store.EstimatedCost(c.eng, observed, docs)
	if err != nil {
		return d, err
	}
	d.CurrentCost = current
	advice, err := c.eng.AdviseWorkload(ctx, observed, legodb.AdviseOptions{
		Timeout:        c.cfg.SearchTimeout,
		MaxEvaluations: c.cfg.MaxEvaluations,
		Documents:      docs,
	})
	if err != nil {
		return d, err
	}
	c.readvises.Add(1)
	d.ReAdvised = true
	d.NewCost = advice.Cost()
	if advice.Cost() >= current*(1-c.cfg.CostMargin) {
		d.Reason = "re-advised configuration does not clear the cost margin"
		return d, nil
	}
	if advice.PSchema() == c.store.PSchema() {
		d.Reason = "re-advised configuration already installed"
		return d, nil
	}
	rep, err := c.store.MigrateTo(advice, legodb.MigrateOptions{TablesPerGroup: c.cfg.TablesPerGroup})
	if err != nil {
		// The migration aborted; the old image is intact and serving.
		d.Reason = "migration aborted"
		return d, err
	}
	c.migrations.Add(1)
	d.Migrated = true
	d.Migration = rep
	d.Reason = "migrated"
	// The store now serves the configuration advised for this observed
	// workload: it becomes the new drift baseline.
	c.baseline = observed
	return d, nil
}

// Stats snapshots the controller's counters.
type Stats struct {
	Checks     uint64
	ReAdvises  uint64
	Migrations uint64
	LastDrift  float64
}

// Stats is safe to call concurrently with Check.
func (c *Controller) Stats() Stats {
	return Stats{
		Checks:     c.checks.Load(),
		ReAdvises:  c.readvises.Load(),
		Migrations: c.migrations.Load(),
		LastDrift:  math.Float64frombits(c.driftBits.Load()),
	}
}
