package xsd

import (
	"math/rand"
	"testing"

	"legodb/internal/pschema"
	"legodb/internal/relational"
	"legodb/internal/xmltree"
	"legodb/internal/xschema"
)

// appendixB is a faithful transcription of the paper's Appendix B XML
// Schema for the IMDB subset (with the obvious typos of the figure
// repaired).
const appendixB = `
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <element name="imdb" type="IMDB"/>
  <complexType name="IMDB">
    <sequence>
      <element name="show" type="Show" minOccurs="0" maxOccurs="unbounded"/>
      <element name="director" type="Director" minOccurs="0" maxOccurs="unbounded"/>
      <element name="actor" type="Actor" minOccurs="0" maxOccurs="unbounded"/>
    </sequence>
  </complexType>
  <complexType name="Show">
    <sequence>
      <element name="title" type="xsd:string"/>
      <element name="year" type="xsd:integer"/>
      <element name="aka" type="xsd:string" minOccurs="0" maxOccurs="unbounded"/>
      <element name="reviews" minOccurs="0" maxOccurs="unbounded">
        <complexType>
          <sequence>
            <any/>
          </sequence>
        </complexType>
      </element>
      <choice>
        <sequence>
          <element name="box_office" type="xsd:integer"/>
          <element name="video_sales" type="xsd:integer"/>
        </sequence>
        <sequence>
          <element name="seasons" type="xsd:integer"/>
          <element name="description" type="xsd:string"/>
          <element name="episodes" minOccurs="0" maxOccurs="unbounded">
            <complexType>
              <sequence>
                <element name="name" type="xsd:string"/>
                <element name="guest_director" type="xsd:string"/>
              </sequence>
            </complexType>
          </element>
        </sequence>
      </choice>
    </sequence>
    <attribute name="type" type="xsd:string" use="required"/>
  </complexType>
  <complexType name="Director">
    <sequence>
      <element name="name" type="xsd:string"/>
      <element name="directed" minOccurs="0" maxOccurs="unbounded">
        <complexType>
          <sequence>
            <element name="title" type="xsd:string"/>
            <element name="year" type="xsd:integer"/>
            <element name="info" type="xsd:string" minOccurs="0"/>
          </sequence>
        </complexType>
      </element>
    </sequence>
  </complexType>
  <complexType name="Actor">
    <sequence>
      <element name="name" type="xsd:string"/>
      <element name="played" minOccurs="0" maxOccurs="unbounded">
        <complexType>
          <sequence>
            <element name="title" type="xsd:string"/>
            <element name="year" type="xsd:integer"/>
            <element name="character" type="xsd:string"/>
            <element name="order_of_appearance" type="xsd:integer"/>
            <element name="award" minOccurs="0" maxOccurs="5">
              <complexType>
                <sequence>
                  <element name="result" type="xsd:string"/>
                  <element name="award_name" type="xsd:string"/>
                </sequence>
              </complexType>
            </element>
          </sequence>
        </complexType>
      </element>
      <element name="biography" minOccurs="0">
        <complexType>
          <sequence>
            <element name="birthday" type="xsd:string"/>
            <element name="text" type="xsd:string"/>
          </sequence>
        </complexType>
      </element>
    </sequence>
  </complexType>
</xsd:schema>
`

func TestParseAppendixB(t *testing.T) {
	s, err := Parse(appendixB)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Root != "ImdbElement" {
		t.Fatalf("root = %q", s.Root)
	}
	show, ok := s.Lookup("Show")
	if !ok {
		t.Fatalf("Show missing; types = %v", s.Names)
	}
	found := false
	xschema.Visit(show, func(tp xschema.Type) {
		if c, ok := tp.(*xschema.Choice); ok && len(c.Alts) == 2 {
			found = true
		}
	})
	if !found {
		t.Fatalf("Show union lost: %s", show)
	}
}

func TestXSDTypedColumns(t *testing.T) {
	s := MustParse(appendixB)
	ps, err := pschema.AllInlined(s)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := relational.Map(ps)
	if err != nil {
		t.Fatal(err)
	}
	var show *relational.Table
	for _, name := range cat.Order {
		tbl := cat.Tables[name]
		if tbl.Column("year") != nil && tbl.Column("title") != nil {
			show = tbl
			break
		}
	}
	if show == nil {
		t.Fatalf("no show table:\n%s", cat)
	}
	// Unlike the DTD import, XSD carries types: year is INT.
	if show.Column("year").Type != relational.IntCol {
		t.Fatalf("year column = %+v", show.Column("year"))
	}
}

func TestXSDValidatesPaperSample(t *testing.T) {
	s := MustParse(appendixB)
	doc, err := xmltree.ParseString(`<imdb>
  <show type="Movie">
    <title>Fugitive, The</title><year>1993</year>
    <aka>Auf der Flucht</aka>
    <reviews><suntimes>Two thumbs up!</suntimes></reviews>
    <box_office>183752965</box_office><video_sales>72450220</video_sales>
  </show>
  <director><name>Andrew Davis</name>
    <directed><title>Fugitive, The</title><year>1993</year></directed>
  </director>
  <actor><name>Harrison Ford</name>
    <played><title>Fugitive, The</title><year>1993</year>
      <character>Richard Kimble</character><order_of_appearance>1</order_of_appearance>
    </played>
    <biography><birthday>1942-07-13</birthday><text>bio</text></biography>
  </actor>
</imdb>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateDocument(doc); err != nil {
		t.Fatalf("paper-style document rejected: %v", err)
	}
	bad, _ := xmltree.ParseString(`<imdb><show type="m"><year>1993</year></show></imdb>`)
	if s.Valid(bad) {
		t.Fatal("document missing title accepted")
	}
}

func TestXSDGeneratedDocumentsValidate(t *testing.T) {
	s := MustParse(appendixB)
	g := xschema.NewGenerator(s, rand.New(rand.NewSource(8)))
	for i := 0; i < 30; i++ {
		doc, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if !s.Valid(doc) {
			t.Fatalf("generated document invalid:\n%s", doc)
		}
	}
}

func TestOccursParsing(t *testing.T) {
	cases := []struct {
		min, max string
		wantMin  int
		wantMax  int
		wantErr  bool
	}{
		{"", "", 1, 1, false},
		{"0", "1", 0, 1, false},
		{"0", "unbounded", 0, xschema.Unbounded, false},
		{"2", "5", 2, 5, false},
		{"3", "1", 0, 0, true},
		{"x", "", 0, 0, true},
		{"", "y", 0, 0, true},
	}
	for _, c := range cases {
		min, max, err := occurs(c.min, c.max)
		if c.wantErr {
			if err == nil {
				t.Errorf("occurs(%q,%q) succeeded", c.min, c.max)
			}
			continue
		}
		if err != nil || min != c.wantMin || max != c.wantMax {
			t.Errorf("occurs(%q,%q) = %d,%d,%v", c.min, c.max, min, max, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`<schema/>`,
		`<schema><element name="e" type="Missing"/></schema>`,
		`<schema><element type="xsd:string"/></schema>`,
		`<schema><element name="e" type="xsd:string"/><complexType><sequence/></complexType></schema>`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestScalarAliases(t *testing.T) {
	s := MustParse(`<schema>
  <element name="e" type="E"/>
  <complexType name="E">
    <sequence>
      <element name="a" type="xs:int"/>
      <element name="b" type="xsd:decimal"/>
      <element name="c" type="string"/>
      <element name="d" type="xs:date"/>
    </sequence>
  </complexType>
</schema>`)
	e, _ := s.Lookup("E")
	seq := e.(*xschema.Sequence)
	wantKinds := []xschema.ScalarKind{xschema.IntegerKind, xschema.IntegerKind, xschema.StringKind, xschema.StringKind}
	for i, want := range wantKinds {
		sc := seq.Items[i].(*xschema.Element).Content.(*xschema.Scalar)
		if sc.Kind != want {
			t.Errorf("item %d kind = %v, want %v", i, sc.Kind, want)
		}
	}
}
