// Package xsd imports W3C XML Schema documents (the notation of the
// paper's Appendix B) into the XML Query Algebra schemas the system
// consumes. The paper's interface "takes as input XML queries, schemas
// and statistics ... represented using XML standards"; this package
// covers the XSD subset those schemas use:
//
//   - global xs:element declarations with named or anonymous types;
//   - named xs:complexType with xs:sequence / xs:choice groups,
//     minOccurs / maxOccurs, nested groups and element refs by type;
//   - xs:attribute with use="required|optional";
//   - simple content: xs:string, xs:integer (and common aliases such as
//     xs:int, xs:long, xs:decimal, xs:number);
//   - xs:any as the algebra's wildcard.
//
// Features outside the paper's usage (substitution groups, facets, keys,
// namespaces beyond the xs prefix) are rejected or ignored, as the paper
// itself abstracts them away ("the distinction between groups and
// complexTypes, local vs global declarations, etc").
package xsd

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"

	"legodb/internal/xschema"
)

// Parse reads an XML Schema document and returns the equivalent algebra
// schema. The root type comes from the first global element declaration.
func Parse(src string) (*xschema.Schema, error) {
	var doc schemaDoc
	dec := xml.NewDecoder(strings.NewReader(src))
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("xsd: %w", err)
	}
	if len(doc.Elements) == 0 {
		return nil, fmt.Errorf("xsd: no global element declarations")
	}
	c := &converter{
		doc:   &doc,
		types: make(map[string]*complexType, len(doc.ComplexTypes)),
	}
	for i := range doc.ComplexTypes {
		ct := &doc.ComplexTypes[i]
		if ct.Name == "" {
			return nil, fmt.Errorf("xsd: global complexType without a name")
		}
		c.types[ct.Name] = ct
	}
	return c.build()
}

// MustParse is Parse that panics on error.
func MustParse(src string) *xschema.Schema {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// --- document model (encoding/xml) ---

type schemaDoc struct {
	XMLName      xml.Name      `xml:"schema"`
	Elements     []elementDecl `xml:"element"`
	ComplexTypes []complexType `xml:"complexType"`
}

type elementDecl struct {
	Name      string       `xml:"name,attr"`
	Type      string       `xml:"type,attr"`
	MinOccurs string       `xml:"minOccurs,attr"`
	MaxOccurs string       `xml:"maxOccurs,attr"`
	Complex   *complexType `xml:"complexType"`
}

type complexType struct {
	Name       string      `xml:"name,attr"`
	Sequence   *group      `xml:"sequence"`
	Choice     *group      `xml:"choice"`
	Attributes []attribute `xml:"attribute"`
}

type group struct {
	MinOccurs string        `xml:"minOccurs,attr"`
	MaxOccurs string        `xml:"maxOccurs,attr"`
	Elements  []elementDecl `xml:"element"`
	Sequences []group       `xml:"sequence"`
	Choices   []group       `xml:"choice"`
	Anys      []anyDecl     `xml:"any"`
	// order restores document order of the children above.
	order []groupChild
}

type anyDecl struct {
	MinOccurs string `xml:"minOccurs,attr"`
	MaxOccurs string `xml:"maxOccurs,attr"`
}

type attribute struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
	Use  string `xml:"use,attr"`
}

// groupChild tags one ordered child of a group.
type groupChild struct {
	kind int // 0 element, 1 sequence, 2 choice, 3 any
	idx  int
}

// UnmarshalXML keeps the document order of group children, which
// encoding/xml's per-field slices would otherwise lose.
func (g *group) UnmarshalXML(d *xml.Decoder, start xml.StartElement) error {
	for _, a := range start.Attr {
		switch a.Name.Local {
		case "minOccurs":
			g.MinOccurs = a.Value
		case "maxOccurs":
			g.MaxOccurs = a.Value
		}
	}
	for {
		tok, err := d.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "element":
				var e elementDecl
				if err := d.DecodeElement(&e, &t); err != nil {
					return err
				}
				g.order = append(g.order, groupChild{kind: 0, idx: len(g.Elements)})
				g.Elements = append(g.Elements, e)
			case "sequence":
				var s group
				if err := d.DecodeElement(&s, &t); err != nil {
					return err
				}
				g.order = append(g.order, groupChild{kind: 1, idx: len(g.Sequences)})
				g.Sequences = append(g.Sequences, s)
			case "choice":
				var c group
				if err := d.DecodeElement(&c, &t); err != nil {
					return err
				}
				g.order = append(g.order, groupChild{kind: 2, idx: len(g.Choices)})
				g.Choices = append(g.Choices, c)
			case "any":
				var a anyDecl
				if err := d.DecodeElement(&a, &t); err != nil {
					return err
				}
				g.order = append(g.order, groupChild{kind: 3, idx: len(g.Anys)})
				g.Anys = append(g.Anys, a)
			default:
				if err := d.Skip(); err != nil {
					return err
				}
			}
		case xml.EndElement:
			return nil
		}
	}
}

// --- conversion ---

type converter struct {
	doc     *schemaDoc
	types   map[string]*complexType
	out     *xschema.Schema
	visited map[string]bool
}

func (c *converter) build() (*xschema.Schema, error) {
	c.out = xschema.NewSchema("")
	c.visited = make(map[string]bool)
	// Global complex types become named types.
	for _, ct := range c.doc.ComplexTypes {
		name := exportName(ct.Name)
		c.out.Define(name, &xschema.Empty{}) // reserve
	}
	for _, ct := range c.doc.ComplexTypes {
		body, err := c.convertComplexBody(&ct)
		if err != nil {
			return nil, fmt.Errorf("xsd: complexType %s: %w", ct.Name, err)
		}
		c.out.Types[exportName(ct.Name)] = body
	}
	// Global elements: element name + type. The first becomes the root.
	for i, e := range c.doc.Elements {
		t, err := c.convertElement(&e)
		if err != nil {
			return nil, fmt.Errorf("xsd: element %s: %w", e.Name, err)
		}
		name := c.out.FreshName(exportName(e.Name) + "Element")
		// When the element's type is a named complex type, wrap the type
		// body so the element tag applies.
		c.out.Define(name, t)
		if i == 0 {
			c.out.Root = name
		}
	}
	xschema.NormalizeSchema(c.out)
	if err := c.out.Validate(); err != nil {
		return nil, err
	}
	c.out.GarbageCollect()
	return c.out, nil
}

// convertElement yields the element's full type (tag + content).
func (c *converter) convertElement(e *elementDecl) (xschema.Type, error) {
	if e.Name == "" {
		return nil, fmt.Errorf("element without a name")
	}
	content, err := c.elementContent(e)
	if err != nil {
		return nil, err
	}
	return &xschema.Element{Name: e.Name, Content: content}, nil
}

func (c *converter) elementContent(e *elementDecl) (xschema.Type, error) {
	switch {
	case e.Complex != nil:
		return c.convertComplexBody(e.Complex)
	case e.Type != "":
		if sc, ok := scalarFor(e.Type); ok {
			return sc, nil
		}
		local := stripPrefix(e.Type)
		if _, ok := c.types[local]; ok {
			// The element's content is the named complex type's body.
			return &xschema.Ref{Name: exportName(local)}, nil
		}
		return nil, fmt.Errorf("unknown type %q", e.Type)
	default:
		// No type: any content, following the paper's AnyElement reading.
		return &xschema.Scalar{}, nil
	}
}

func stripPrefix(name string) string {
	if i := strings.LastIndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func scalarFor(typeName string) (xschema.Type, bool) {
	switch stripPrefix(typeName) {
	case "string", "anyURI", "date", "token", "normalizedString", "ID", "IDREF":
		return &xschema.Scalar{Kind: xschema.StringKind}, true
	case "integer", "int", "long", "short", "decimal", "number",
		"nonNegativeInteger", "positiveInteger":
		return &xschema.Scalar{Kind: xschema.IntegerKind, Size: 4}, true
	default:
		return nil, false
	}
}

// convertComplexBody converts a complexType's content (attributes first,
// then the particle) into algebra content.
func (c *converter) convertComplexBody(ct *complexType) (xschema.Type, error) {
	var items []xschema.Type
	for _, a := range ct.Attributes {
		sc, ok := scalarFor(a.Type)
		if !ok {
			sc = &xschema.Scalar{}
		}
		var attr xschema.Type = &xschema.Attribute{Name: a.Name, Content: sc.(*xschema.Scalar)}
		if a.Use != "required" {
			attr = &xschema.Repeat{Inner: attr, Min: 0, Max: 1}
		}
		items = append(items, attr)
	}
	switch {
	case ct.Sequence != nil:
		t, err := c.convertGroup(ct.Sequence, false)
		if err != nil {
			return nil, err
		}
		items = append(items, t)
	case ct.Choice != nil:
		t, err := c.convertGroup(ct.Choice, true)
		if err != nil {
			return nil, err
		}
		items = append(items, t)
	}
	switch len(items) {
	case 0:
		return &xschema.Empty{}, nil
	case 1:
		return items[0], nil
	default:
		return &xschema.Sequence{Items: items}, nil
	}
}

// convertGroup converts an xs:sequence or xs:choice with its occurrence
// bounds.
func (c *converter) convertGroup(g *group, choice bool) (xschema.Type, error) {
	var parts []xschema.Type
	for _, child := range g.order {
		var t xschema.Type
		var err error
		var min, max int
		switch child.kind {
		case 0:
			e := g.Elements[child.idx]
			t, err = c.convertElement(&e)
			if err != nil {
				return nil, err
			}
			min, max, err = occurs(e.MinOccurs, e.MaxOccurs)
		case 1:
			sub := g.Sequences[child.idx]
			t, err = c.convertGroup(&sub, false)
			if err != nil {
				return nil, err
			}
			min, max, err = occurs(sub.MinOccurs, sub.MaxOccurs)
		case 2:
			sub := g.Choices[child.idx]
			t, err = c.convertGroup(&sub, true)
			if err != nil {
				return nil, err
			}
			min, max, err = occurs(sub.MinOccurs, sub.MaxOccurs)
		case 3:
			a := g.Anys[child.idx]
			t = &xschema.Wildcard{Content: &xschema.Scalar{}}
			min, max, err = occurs(a.MinOccurs, a.MaxOccurs)
		}
		if err != nil {
			return nil, err
		}
		if !(min == 1 && max == 1) {
			t = &xschema.Repeat{Inner: t, Min: min, Max: max}
		}
		parts = append(parts, t)
	}
	if len(parts) == 0 {
		return &xschema.Empty{}, nil
	}
	if choice {
		if len(parts) == 1 {
			return parts[0], nil
		}
		return &xschema.Choice{Alts: parts}, nil
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return &xschema.Sequence{Items: parts}, nil
}

func occurs(minAttr, maxAttr string) (int, int, error) {
	min, max := 1, 1
	if minAttr != "" {
		v, err := strconv.Atoi(minAttr)
		if err != nil || v < 0 {
			return 0, 0, fmt.Errorf("bad minOccurs %q", minAttr)
		}
		min = v
	}
	switch {
	case maxAttr == "":
	case maxAttr == "unbounded":
		max = xschema.Unbounded
	default:
		v, err := strconv.Atoi(maxAttr)
		if err != nil || v < 0 {
			return 0, 0, fmt.Errorf("bad maxOccurs %q", maxAttr)
		}
		max = v
	}
	if max != xschema.Unbounded && max < min {
		return 0, 0, fmt.Errorf("maxOccurs %d below minOccurs %d", max, min)
	}
	return min, max, nil
}

func exportName(name string) string {
	clean := strings.Map(func(r rune) rune {
		if r == '-' || r == '.' || r == ':' {
			return '_'
		}
		return r
	}, name)
	if clean == "" {
		return "T"
	}
	return strings.ToUpper(clean[:1]) + clean[1:]
}
