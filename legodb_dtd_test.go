package legodb

import (
	"strings"
	"testing"
)

const catalogDTD = `
<!DOCTYPE catalog [
<!ELEMENT catalog (product*)>
<!ELEMENT product (name, price, review*)>
<!ATTLIST product sku CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT review (#PCDATA)>
]>
`

func TestNewFromDTDEndToEnd(t *testing.T) {
	eng, err := NewFromDTD(catalogDTD)
	if err != nil {
		t.Fatalf("NewFromDTD: %v", err)
	}
	if !strings.Contains(eng.Schema(), "product") {
		t.Fatalf("schema = %q", eng.Schema())
	}
	if err := eng.AddQuery("q", `FOR $p IN catalog/product WHERE $p/name = c1 RETURN $p/price`, 1); err != nil {
		t.Fatal(err)
	}
	advice, err := eng.Advise(AdviseOptions{Strategy: GreedySI})
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	// DTDs have no types: the price column must be a string.
	if !strings.Contains(advice.DDL(), "price STRING") && !strings.Contains(advice.DDL(), "price CHAR") {
		t.Fatalf("price not stringly typed:\n%s", advice.DDL())
	}
	store, err := advice.Open()
	if err != nil {
		t.Fatal(err)
	}
	err = store.LoadXML(strings.NewReader(`<catalog>
  <product sku="A1"><name>widget</name><price>42</price><review>fine</review></product>
  <product sku="B2"><name>gadget</name><price>7</price></product>
</catalog>`))
	if err != nil {
		t.Fatalf("LoadXML: %v", err)
	}
	res, err := store.Query(`FOR $p IN catalog/product WHERE $p/name = c1 RETURN $p/price`, Params{"c1": "widget"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "42" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestNewFromDTDRejectsBadInput(t *testing.T) {
	if _, err := NewFromDTD("<!ELEMENT a (undeclared)>"); err == nil {
		t.Fatal("bad DTD accepted")
	}
}

func TestBeamAdviseViaFacade(t *testing.T) {
	eng := newEngine(t)
	if err := eng.AddQuery("q", `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title`, 1); err != nil {
		t.Fatal(err)
	}
	greedy, err := eng.Advise(AdviseOptions{Strategy: GreedySO})
	if err != nil {
		t.Fatal(err)
	}
	beam, err := eng.Advise(AdviseOptions{Strategy: GreedySO, BeamWidth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if beam.Cost() > greedy.Cost()*1.0001 {
		t.Fatalf("beam (%.1f) worse than greedy (%.1f)", beam.Cost(), greedy.Cost())
	}
}

func TestUpdateWorkloadViaFacade(t *testing.T) {
	eng := newEngine(t)
	if err := eng.AddUpdate("ins", "INSERT imdb/show", 1); err != nil {
		t.Fatal(err)
	}
	advice, err := eng.Advise(AdviseOptions{Strategy: GreedySO})
	if err != nil {
		t.Fatalf("update-only workload: %v", err)
	}
	if advice.Cost() <= 0 {
		t.Fatal("non-positive update cost")
	}
	if err := eng.AddUpdate("bad", "FROB imdb/show", 1); err == nil {
		t.Fatal("bad update kind accepted")
	}
}
