package legodb

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"legodb/internal/engine"
	"legodb/internal/imdb"
	"legodb/internal/pschema"
	"legodb/internal/relational"
	"legodb/internal/shred"
	"legodb/internal/transform"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

// TestLogicalPhysicalIndependence verifies the paper's second design
// principle end to end: the answers of a workload are invariant under
// the storage configuration. The same document set is shredded into
// every configuration the transformations can produce, each query runs
// on each configuration, and the result multisets must coincide.
func TestLogicalPhysicalIndependence(t *testing.T) {
	base := imdb.Schema()
	if err := xstats.Annotate(base, imdb.Stats()); err != nil {
		t.Fatal(err)
	}

	configs := map[string]*xschema.Schema{}
	if ps, err := pschema.AllInlined(base); err == nil {
		configs["all-inlined"] = ps
	} else {
		t.Fatal(err)
	}
	if ps, err := pschema.InitialOutlined(base); err == nil {
		configs["all-outlined"] = ps
	} else {
		t.Fatal(err)
	}
	if ps, err := pschema.InitialInlined(base, pschema.InlineOptions{}); err == nil {
		configs["inlined-with-unions"] = ps
		if cands := transform.Candidates(ps, transform.Options{
			Kinds: []transform.Kind{transform.KindUnionDistribute},
		}); len(cands) > 0 {
			dist, err := transform.Apply(ps, cands[0])
			if err != nil {
				t.Fatal(err)
			}
			configs["union-distributed"] = dist
		}
	} else {
		t.Fatal(err)
	}
	if cands := transform.Candidates(configs["all-inlined"], transform.Options{
		Kinds:          []transform.Kind{transform.KindWildcardMaterialize},
		WildcardLabels: map[string]float64{"nyt": 0.25},
	}); len(cands) > 0 {
		wild, err := transform.Apply(configs["all-inlined"], cands[0])
		if err != nil {
			t.Fatal(err)
		}
		configs["wildcard-materialized"] = wild
	}

	doc := imdb.Generate(imdb.GenOptions{Shows: 80, Seed: 33, ReviewsPerShow: 1.5})
	title := doc.Path("show", "title")[0].Text
	year := doc.Path("show", "year")[1].Text
	queries := []struct {
		name   string
		src    string
		params engine.Params
	}{
		{"by-year", `FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/year`,
			engine.Params{"c1": engine.StrVal(year)}},
		{"by-title-desc", `FOR $v IN imdb/show WHERE $v/title = c2 RETURN $v/description`,
			engine.Params{"c2": engine.StrVal(title)}},
		{"nyt-reviews", `FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/reviews/nyt`,
			engine.Params{"c1": engine.StrVal(year)}},
		{"episodes", `FOR $v IN imdb/show
			RETURN <r> $v/title FOR $e IN $v/episodes RETURN $e/name, $e/guest_director </r>`, nil},
		{"actor-director", `FOR $i IN imdb, $a IN $i/actor, $d IN $i/director
			WHERE $a/name = $d/name RETURN $a/name`, nil},
	}

	answers := map[string]map[string][]string{}
	names := make([]string, 0, len(configs))
	for name := range configs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ps := configs[name]
		// The year parameter must compare as the column's type; convert
		// where the schema typed year as Integer.
		cat, err := relational.Map(ps)
		if err != nil {
			t.Fatalf("%s: Map: %v", name, err)
		}
		db := engine.NewDatabase(cat)
		if err := shred.New(ps, cat, db).Shred(doc); err != nil {
			t.Fatalf("%s: Shred: %v", name, err)
		}
		answers[name] = map[string][]string{}
		for _, q := range queries {
			parsed := xquery.MustParse(q.src)
			parsed.Name = q.name
			sq, err := xquery.Translate(parsed, ps, cat)
			if err != nil {
				t.Fatalf("%s/%s: Translate: %v", name, q.name, err)
			}
			params := engine.Params{}
			for k, v := range q.params {
				params[k] = coerceParam(v)
			}
			rs, err := db.Execute(sq, params)
			if err != nil {
				t.Fatalf("%s/%s: Execute: %v", name, q.name, err)
			}
			answers[name][q.name] = canonicalRows(rs)
		}
	}
	reference := names[0]
	for _, name := range names[1:] {
		for _, q := range queries {
			got := answers[name][q.name]
			want := answers[reference][q.name]
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("query %s differs between %s (%d rows) and %s (%d rows)\nfirst rows: %.200v vs %.200v",
					q.name, reference, len(want), name, len(got), first(want), first(got))
			}
		}
	}
}

// coerceParam lets a digit-string parameter match integer columns: the
// engine coerces mixed comparisons, so the string form works everywhere.
func coerceParam(v engine.Value) engine.Value { return v }

// canonicalRows renders a result set as a sorted multiset of cell
// multisets, so block order and column order do not matter.
func canonicalRows(rs *engine.ResultSet) []string {
	rows := make([]string, 0, len(rs.Rows))
	for _, r := range rs.Rows {
		cells := make([]string, 0, len(r))
		for _, v := range r {
			if v.IsNull() {
				continue // absent optional fields are not part of the answer
			}
			cells = append(cells, v.String())
		}
		sort.Strings(cells)
		rows = append(rows, strings.Join(cells, "|"))
	}
	sort.Strings(rows)
	return rows
}

func first(rows []string) string {
	if len(rows) == 0 {
		return "<empty>"
	}
	return fmt.Sprintf("%q", rows[0])
}
