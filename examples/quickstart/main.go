// Quickstart: describe an application (schema, statistics, workload),
// let LegoDB pick a relational storage mapping, and inspect the result.
package main

import (
	"fmt"
	"log"

	"legodb"
)

const schema = `
type Catalog = catalog[ Product{0,*} ]
type Product = product [ @sku[ String ],
    name[ String ],
    price[ Integer ],
    description[ String ],
    Review* ]
type Review = review[ ~[ String ] ]
`

// Statistics in the paper's Appendix A notation: instance counts, value
// sizes, integer ranges with distinct counts.
const stats = `
(["catalog"], STcnt(1));
(["catalog";"product"], STcnt(50000));
(["catalog";"product";"sku"], STsize(12));
(["catalog";"product";"name"], STsize(40) STbase(0,0,50000));
(["catalog";"product";"price"], STbase(100,99999,5000));
(["catalog";"product";"description"], STsize(400));
(["catalog";"product";"review"], STcnt(120000));
(["catalog";"product";"review";"TILDE"], STsize(300));
`

func main() {
	eng, err := legodb.New(schema)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.SetStatisticsText(stats); err != nil {
		log.Fatal(err)
	}
	// The workload: mostly point lookups by name, occasionally a full
	// catalog export.
	if err := eng.AddQuery("lookup",
		`FOR $p IN catalog/product WHERE $p/name = c1 RETURN $p/name, $p/price`, 0.8); err != nil {
		log.Fatal(err)
	}
	if err := eng.AddQuery("export",
		`FOR $p IN catalog/product RETURN $p`, 0.2); err != nil {
		log.Fatal(err)
	}

	advice, err := eng.Advise(legodb.AdviseOptions{Strategy: legodb.GreedySO})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("search:")
	fmt.Print(advice.Explain())
	fmt.Println()
	fmt.Println("chosen physical schema:")
	fmt.Print(advice.PSchema())
	fmt.Println()
	fmt.Println("relational configuration:")
	fmt.Print(advice.DDL())
	fmt.Println("translated workload:")
	fmt.Print(advice.SQL())
}
