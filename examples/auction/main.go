// Auction scenario: a different application domain (an XMark-flavored
// auction site) showing that the advisor is not IMDB-specific. The
// schema mixes the features the paper's rewritings target: a deep
// optional profile (inline or outline?), unbounded bid histories
// (repetition), open-ended item descriptions behind a wildcard
// (materialization), and a closed/open auction union (distribution).
// Two workloads — bidding (hot lookups) and reporting (bulk export) —
// get visibly different storage advice.
package main

import (
	"fmt"
	"log"

	"legodb"
)

const schema = `
type Site = site[ Auction{0,*}, User{0,*} ]
type Auction = auction [ @id[ String ],
    title[ String ],
    category[ String ],
    Bid*,
    descr[ ~[ String ] ],
    ( current_price[ Integer ], ends[ String ]
    | final_price[ Integer ], winner[ String ] ) ]
type Bid = bid[ bidder[ String ], amount[ Integer ], time[ String ] ]
type User = user [ name[ String ],
    rating[ Integer ],
    profile[ education[ String ], income[ Integer ], interest[ String ] ]? ]
`

const stats = `
(["site"], STcnt(1));
(["site";"auction"], STcnt(20000));
(["site";"auction";"id"], STsize(12));
(["site";"auction";"title"], STsize(60) STbase(0,0,20000));
(["site";"auction";"category"], STsize(20) STbase(0,0,120));
(["site";"auction";"bid"], STcnt(240000));
(["site";"auction";"bid";"bidder"], STsize(30) STbase(0,0,50000));
(["site";"auction";"bid";"amount"], STbase(1,100000,5000));
(["site";"auction";"bid";"time"], STsize(20));
(["site";"auction";"descr";"TILDE"], STsize(500));
(["site";"auction";"current_price"], STcnt(14000) STbase(1,100000,5000));
(["site";"auction";"final_price"], STcnt(6000) STbase(1,100000,5000));
(["site";"auction";"winner"], STsize(30));
(["site";"auction";"ends"], STsize(20));
(["site";"user"], STcnt(50000));
(["site";"user";"name"], STsize(30) STbase(0,0,50000));
(["site";"user";"rating"], STbase(0,100,100));
(["site";"user";"profile";"education"], STcnt(15000) STsize(20));
(["site";"user";"profile";"income"], STbase(0,1000000,1000));
(["site";"user";"profile";"interest"], STsize(30));
`

func advise(label string, queries map[string]struct {
	src    string
	weight float64
}) {
	eng, err := legodb.New(schema)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.SetStatisticsText(stats); err != nil {
		log.Fatal(err)
	}
	for name, q := range queries {
		if err := eng.AddQuery(name, q.src, q.weight); err != nil {
			log.Fatal(err)
		}
	}
	advice, err := eng.Advise(legodb.AdviseOptions{Strategy: legodb.GreedySI})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s workload ===\n", label)
	fmt.Printf("cost %.1f (started at %.1f)\n", advice.Cost(), advice.InitialCost())
	fmt.Println(advice.PSchema())
}

func main() {
	// Bidding: hot point queries on live auctions and user ratings.
	advise("bidding", map[string]struct {
		src    string
		weight float64
	}{
		"price-by-title": {`FOR $a IN site/auction WHERE $a/title = c1
		                    RETURN $a/current_price`, 0.4},
		"bids-of-auction": {`FOR $a IN site/auction, $b IN $a/bid WHERE $a/title = c1
		                     RETURN $b/bidder, $b/amount`, 0.4},
		"user-rating": {`FOR $u IN site/user WHERE $u/name = c2 RETURN $u/rating`, 0.2},
	})

	// Reporting: bulk exports for analytics.
	advise("reporting", map[string]struct {
		src    string
		weight float64
	}{
		"export-auctions": {`FOR $a IN site/auction RETURN $a`, 0.6},
		"export-users":    {`FOR $u IN site/user RETURN $u`, 0.4},
	})

	// Same engine, update-heavy mix: every bid is an insert.
	eng, err := legodb.New(schema)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.SetStatisticsText(stats); err != nil {
		log.Fatal(err)
	}
	if err := eng.AddQuery("price-by-title",
		`FOR $a IN site/auction WHERE $a/title = c1 RETURN $a/current_price`, 0.3); err != nil {
		log.Fatal(err)
	}
	if err := eng.AddUpdate("place-bid", "INSERT site/auction/bid", 0.7); err != nil {
		log.Fatal(err)
	}
	advice, err := eng.Advise(legodb.AdviseOptions{Strategy: legodb.GreedySI})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== bid-insert-heavy workload ===")
	fmt.Printf("cost %.1f (started at %.1f)\n", advice.Cost(), advice.InitialCost())
	fmt.Println(advice.DDL())
}
