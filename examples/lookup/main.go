// Lookup scenario (the paper's W2): a movie-information web site serves
// interactive point queries. LegoDB keeps rarely-touched wide fields
// (like the 120-byte description) out of the hot Show relation. The
// example compares the advised configuration against the ALL-INLINED
// rule of thumb, then answers lookups on real data.
package main

import (
	"fmt"
	"log"

	"legodb"
	"legodb/internal/imdb"
)

func main() {
	eng, err := legodb.New(imdb.SchemaText)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.SetStatisticsText(imdb.Stats().String()); err != nil {
		log.Fatal(err)
	}
	// W2 = {F1: 0.1, F2: 0.1, F3: 0.4, F4: 0.4}: lookup heavy.
	for name, weight := range map[string]float64{"F1": 0.1, "F2": 0.1, "F3": 0.4, "F4": 0.4} {
		if err := eng.AddQuery(name, imdb.Query(name).String(), weight); err != nil {
			log.Fatal(err)
		}
	}

	advice, err := eng.Advise(legodb.AdviseOptions{Strategy: legodb.GreedySI})
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := eng.EvaluateFixed("all-inlined")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advised configuration cost: %.1f\n", advice.Cost())
	fmt.Printf("ALL-INLINED baseline cost:  %.1f (%.0f%% more expensive)\n\n",
		baseline.Cost(), 100*(baseline.Cost()-advice.Cost())/advice.Cost())
	fmt.Println("advised physical schema:")
	fmt.Print(advice.PSchema())

	store, err := advice.Open()
	if err != nil {
		log.Fatal(err)
	}
	doc := imdb.Generate(imdb.GenOptions{Shows: 150, Seed: 11})
	if err := store.Load(doc); err != nil {
		log.Fatal(err)
	}

	// Interactive lookups with parameters drawn from the data.
	title := doc.Path("show", "title")[0].Text
	fmt.Printf("\nlookup: description of %q\n", title)
	plan, err := store.ExplainQuery(`FOR $v IN imdb/show WHERE $v/title = c2 RETURN $v/description`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)
	res, err := store.Query(`FOR $v IN imdb/show WHERE $v/title = c2 RETURN $v/description`,
		legodb.Params{"c2": title})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("  -> %v\n", row)
	}

	year := doc.Path("show", "year")[0].Text
	res, err = store.Query(`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/year`,
		legodb.Params{"c1": year})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshows of year %s: %d\n", year, len(res.Rows))
}
