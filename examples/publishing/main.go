// Publishing scenario (the paper's W1): a cable company routinely
// exports large parts of its movie database to set-top boxes. The
// workload is dominated by publishing queries, so LegoDB picks an
// inlining-heavy configuration. The example then instantiates the chosen
// store, loads synthetic IMDB data, runs the export and reconstructs
// documents.
package main

import (
	"fmt"
	"log"

	"legodb"
	"legodb/internal/imdb"
)

func main() {
	eng, err := legodb.New(imdb.SchemaText)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.SetStatisticsText(imdb.Stats().String()); err != nil {
		log.Fatal(err)
	}
	// W1 = {Q1: 0.4, Q2: 0.4, Q3: 0.1, Q4: 0.1} over the Figure 5
	// queries: heavy on publishing.
	for name, weight := range map[string]float64{"F1": 0.4, "F2": 0.4, "F3": 0.1, "F4": 0.1} {
		if err := eng.AddQuery(name, imdb.Query(name).String(), weight); err != nil {
			log.Fatal(err)
		}
	}
	advice, err := eng.Advise(legodb.AdviseOptions{Strategy: legodb.GreedySI})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated workload cost: %.1f (started at %.1f)\n\n", advice.Cost(), advice.InitialCost())
	fmt.Println("chosen tables:")
	fmt.Print(advice.DDL())

	store, err := advice.Open()
	if err != nil {
		log.Fatal(err)
	}
	doc := imdb.Generate(imdb.GenOptions{Shows: 200, Seed: 7})
	if err := store.Load(doc); err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded tables:")
	for _, t := range store.Tables() {
		fmt.Printf("  %-20s %6d rows\n", t, store.TableRows(t))
	}

	// Run the catalog export (Figure 5's Q2: publish all shows).
	res, err := store.Query(`FOR $s IN imdb/show RETURN $s`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexport returned %d rows across the outer union\n", len(res.Rows))

	// Reconstruct the stored document and verify its size.
	docs, err := store.Publish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d document(s); first has %d elements (original: %d)\n",
		len(docs), docs[0].Size(), doc.Size())
	fmt.Printf("engine counters: %+v\n", store.Measured())
}
