// Wildcard scenario: reviews are semistructured — each review element
// wraps a child named after its source (<nyt>, <suntimes>, ...), which
// the schema only describes with a wildcard (~). When the workload asks
// for one source by name, LegoDB's wildcard-materialization rewriting
// partitions the wildcard relation (~ = nyt | ~!nyt), the analogue of
// the paper's Figure 4(b) and Table 2.
package main

import (
	"fmt"
	"log"
	"strings"

	"legodb"
)

const schema = `
type IMDB = imdb[ Show{0,*} ]
type Show = show [ title[ String ], year[ Integer ], Review* ]
type Review = review[ ~[ String ] ]
`

const stats = `
(["imdb"], STcnt(1));
(["imdb";"show"], STcnt(34798));
(["imdb";"show";"title"], STsize(50) STbase(0,0,34798));
(["imdb";"show";"year"], STbase(1800,2100,300));
(["imdb";"show";"review"], STcnt(100000));
(["imdb";"show";"review";"TILDE"], STsize(800) STbase(0,0,90000));
`

const docXML = `<imdb>
  <show><title>Fugitive, The</title><year>1993</year>
    <review><nyt>standard summer fare</nyt></review>
    <review><suntimes>two thumbs up</suntimes></review>
  </show>
  <show><title>X Files, The</title><year>1994</year>
    <review><nyt>paranoia pays off</nyt></review>
  </show>
</imdb>`

func main() {
	eng, err := legodb.New(schema)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.SetStatisticsText(stats); err != nil {
		log.Fatal(err)
	}
	// The workload names the nyt source explicitly: the signal for
	// materializing it out of the wildcard.
	if err := eng.AddQuery("nyt-of-1999",
		`FOR $v IN imdb/show WHERE $v/year = 1999 RETURN $v/title, $v/review/nyt`, 1); err != nil {
		log.Fatal(err)
	}

	// The full search with wildcard labels enabled; 12.5% of reviews are
	// from the NYT.
	advice, err := eng.Advise(legodb.AdviseOptions{
		Strategy:       legodb.GreedyFull,
		WildcardLabels: map[string]float64{"nyt": 0.125},
		MaxIterations:  8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("search:")
	fmt.Print(advice.Explain())
	fmt.Println()
	fmt.Println("chosen configuration:")
	fmt.Print(advice.DDL())

	store, err := advice.Open()
	if err != nil {
		log.Fatal(err)
	}
	if err := store.LoadXML(strings.NewReader(docXML)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded tables:")
	for _, t := range store.Tables() {
		fmt.Printf("  %-16s %d rows\n", t, store.TableRows(t))
	}
	res, err := store.Query(`FOR $v IN imdb/show WHERE $v/year = 1993 RETURN $v/title, $v/review/nyt`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNYT reviews of 1993 shows: %v\n", res.Rows)
}
