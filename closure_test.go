package legodb

import (
	"math/rand"
	"testing"

	"legodb/internal/imdb"
	"legodb/internal/pschema"
	"legodb/internal/relational"
	"legodb/internal/transform"
	"legodb/internal/xquery"
	"legodb/internal/xstats"
)

// TestPropertyTransformationClosure drives random walks through the
// transformation space and asserts, at every step, the system's closure
// invariants: the schema stays stratified, the fixed mapping stays total,
// the full workload stays translatable, and documents valid under the
// original schema stay valid (all rewritings preserve or widen the
// language).
func TestPropertyTransformationClosure(t *testing.T) {
	base := imdb.Schema()
	if err := xstats.Annotate(base, imdb.Stats()); err != nil {
		t.Fatal(err)
	}
	start, err := pschema.InitialInlined(base, pschema.InlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sample := imdb.Generate(imdb.GenOptions{Shows: 10, Seed: 77})
	opts := transform.Options{WildcardLabels: map[string]float64{"nyt": 0.25}}

	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		current := start.Clone()
		for step := 0; step < 8; step++ {
			cands := transform.Candidates(current, opts)
			if len(cands) == 0 {
				break
			}
			tr := cands[rng.Intn(len(cands))]
			next, err := transform.Apply(current, tr)
			if err != nil {
				// Some candidates are inapplicable in context (the search
				// skips them the same way); try another.
				continue
			}
			current = next
			if err := pschema.Check(current); err != nil {
				t.Fatalf("seed %d step %d (%s): schema not stratified: %v", seed, step, tr, err)
			}
			cat, err := relational.Map(current)
			if err != nil {
				t.Fatalf("seed %d step %d (%s): mapping failed: %v", seed, step, tr, err)
			}
			for _, name := range imdb.QueryNames() {
				if _, err := xquery.Translate(imdb.Query(name), current, cat); err != nil {
					t.Fatalf("seed %d step %d (%s): query %s untranslatable: %v", seed, step, tr, name, err)
				}
			}
			if !current.Valid(sample) {
				t.Fatalf("seed %d step %d (%s): transformed schema rejects a valid document", seed, step, tr)
			}
		}
	}
}
