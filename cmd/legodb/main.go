// Command legodb runs the cost-based storage mapping engine from the
// command line: given an XML Schema (algebra notation), data statistics
// (Appendix A notation) and a workload file, it prints the chosen
// relational configuration, the translated SQL and the search trace.
//
// Usage:
//
//	legodb -schema schema.alg -stats stats.st -workload workload.xq [flags]
//
// The workload file holds one weighted query per block:
//
//	# weight 0.4
//	FOR $v IN imdb/show WHERE $v/year = 1999 RETURN $v/title
//	;
//	# weight 0.6
//	FOR $s IN imdb/show RETURN $s
//	;
//
// Without -schema, the embedded IMDB application (paper Appendices A–C)
// is used, with -preset choosing its workload.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"legodb"
	"legodb/internal/imdb"
)

// Exit codes: scripts distinguish bad invocations from runtime failures
// and from searches truncated by the -timeout deadline (which still
// print their anytime best-so-far result).
const (
	exitOK       = 0
	exitRuntime  = 1
	exitUsage    = 2
	exitDeadline = 3
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		schemaPath = flag.String("schema", "", "XML Schema file (algebra notation, or a DTD when the file ends in .dtd); empty = embedded IMDB schema")
		statsPath  = flag.String("stats", "", "statistics file (Appendix A notation); empty with -schema unset = embedded IMDB statistics")
		wkldPath   = flag.String("workload", "", "workload file (queries separated by ';' lines, '# weight w' comments)")
		preset     = flag.String("preset", "lookup", "embedded workload when -workload unset: lookup, publish, w1, w2, mixed:<k>")
		strategy   = flag.String("strategy", "greedy-so", "search strategy: greedy-so, greedy-si, greedy-full")
		beam       = flag.Int("beam", 0, "beam width (>1 switches from greedy to beam search)")
		threshold  = flag.Float64("threshold", 0, "stop when an iteration improves cost by less than this fraction")
		maxIter    = flag.Int("max-iterations", 0, "bound the greedy loop (0 = until convergence)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the search (0 = none); on expiry the best configuration found so far is printed and the exit code is 3")
		maxEvals   = flag.Int("max-evaluations", 0, "bound the number of candidate configurations costed (0 = unbounded); anytime like -timeout")
		showSQL    = flag.Bool("sql", false, "print the translated SQL workload")
		showTrace  = flag.Bool("trace", true, "print the search trace")
		loadPath   = flag.String("load", "", "XML document to shred into the chosen configuration")
		queryText  = flag.String("query", "", "XQuery to execute against the loaded store")
		paramList  = flag.String("params", "", "query parameters: c1=value,c2=value")
		cacheFile  = flag.String("cachefile", "", "cost-cache snapshot file: loaded before the search, saved back after; a corrupt file is quarantined and the run continues cold")
	)
	flag.Parse()

	// Interrupts cancel the search gracefully: the best configuration
	// found so far is still printed (anytime semantics).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	eng, err := buildEngine(*schemaPath, *statsPath, *wkldPath, *preset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "legodb: %v\n", err)
		return exitUsage
	}
	if *cacheFile != "" {
		if warning, err := loadCacheFile(eng, *cacheFile); err != nil {
			fmt.Fprintf(os.Stderr, "legodb: %v\n", err)
			return exitRuntime
		} else if warning != "" {
			fmt.Fprintf(os.Stderr, "legodb: warning: %s\n", warning)
		}
	}
	opts := legodb.AdviseOptions{
		Threshold: *threshold, MaxIterations: *maxIter, BeamWidth: *beam,
		Timeout: *timeout, MaxEvaluations: *maxEvals,
	}
	switch *strategy {
	case "greedy-so":
		opts.Strategy = legodb.GreedySO
	case "greedy-si":
		opts.Strategy = legodb.GreedySI
	case "greedy-full":
		opts.Strategy = legodb.GreedyFull
		opts.WildcardLabels = map[string]float64{"nyt": 0.25}
	default:
		fmt.Fprintf(os.Stderr, "legodb: unknown strategy %q\n", *strategy)
		return exitUsage
	}
	advice, err := eng.AdviseContext(ctx, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "legodb: %v\n", err)
		return exitRuntime
	}
	if *cacheFile != "" {
		if err := eng.SaveCostCacheFile(*cacheFile); err != nil {
			fmt.Fprintf(os.Stderr, "legodb: cachefile %s: %v\n", *cacheFile, err)
			return exitRuntime
		}
	}
	if *showTrace {
		fmt.Println("-- search --")
		fmt.Print(advice.Explain())
		fmt.Println()
	}
	fmt.Println("-- physical schema --")
	fmt.Print(advice.PSchema())
	fmt.Println()
	fmt.Println("-- relational configuration --")
	fmt.Print(advice.DDL())
	if *showSQL {
		fmt.Println("-- translated workload --")
		fmt.Print(advice.SQL())
	}
	if *loadPath != "" || *queryText != "" {
		if err := runStore(advice, *loadPath, *queryText, *paramList); err != nil {
			fmt.Fprintf(os.Stderr, "legodb: %v\n", err)
			return exitRuntime
		}
	}
	if rep := advice.Report(); rep.Stop.Interrupted() {
		fmt.Fprintf(os.Stderr, "legodb: search stopped early (%s) after %s: result is the best of %d evaluated candidates\n",
			rep.Stop, rep.Elapsed.Round(time.Millisecond), rep.Evaluated)
		return exitDeadline
	}
	return exitOK
}

// loadCacheFile warms the engine's cost cache from a snapshot written
// by an earlier run. A missing file is fine (this run will create it);
// a corrupt file is quarantined and reported as a warning — the run
// continues with a cold cache rather than failing.
func loadCacheFile(eng *legodb.Engine, path string) (warning string, err error) {
	n, warning, err := eng.LoadCostCacheFile(path)
	if err != nil {
		return "", fmt.Errorf("cachefile %s: %w", path, err)
	}
	_ = n
	return warning, nil
}

// runStore instantiates the advised configuration, loads a document and
// executes a query, printing the result table.
func runStore(advice *legodb.Advice, loadPath, queryText, paramList string) error {
	store, err := advice.Open()
	if err != nil {
		return err
	}
	if loadPath != "" {
		f, err := os.Open(loadPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := store.LoadXML(f); err != nil {
			return fmt.Errorf("load %s: %w", loadPath, err)
		}
		fmt.Println("-- loaded --")
		for _, t := range store.Tables() {
			fmt.Printf("%-24s %8d rows\n", t, store.TableRows(t))
		}
	}
	if queryText == "" {
		return nil
	}
	params := legodb.Params{}
	if paramList != "" {
		for _, pair := range strings.Split(paramList, ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return fmt.Errorf("bad parameter %q (want name=value)", pair)
			}
			params[strings.TrimSpace(k)] = v
		}
	}
	plan, err := store.ExplainQuery(queryText)
	if err != nil {
		return err
	}
	fmt.Println("-- plan --")
	fmt.Println(plan)
	res, err := store.Query(queryText, params)
	if err != nil {
		return err
	}
	fmt.Println("-- result --")
	fmt.Println(strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		fmt.Println(strings.Join(row, "\t"))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
	return nil
}

func buildEngine(schemaPath, statsPath, wkldPath, preset string) (*legodb.Engine, error) {
	schemaText := imdb.SchemaText
	statsText := imdb.Stats().String()
	if schemaPath != "" {
		b, err := os.ReadFile(schemaPath)
		if err != nil {
			return nil, err
		}
		schemaText = string(b)
		statsText = ""
	}
	if statsPath != "" {
		b, err := os.ReadFile(statsPath)
		if err != nil {
			return nil, err
		}
		statsText = string(b)
	}
	var eng *legodb.Engine
	var err error
	switch {
	case strings.HasSuffix(schemaPath, ".dtd"):
		eng, err = legodb.NewFromDTD(schemaText)
	case strings.HasSuffix(schemaPath, ".xsd"):
		eng, err = legodb.NewFromXSD(schemaText)
	default:
		eng, err = legodb.New(schemaText)
	}
	if err != nil {
		return nil, err
	}
	if statsText != "" {
		if err := eng.SetStatisticsText(statsText); err != nil {
			return nil, err
		}
	}
	if wkldPath != "" {
		b, err := os.ReadFile(wkldPath)
		if err != nil {
			return nil, err
		}
		return eng, addWorkloadFile(eng, string(b))
	}
	if schemaPath != "" {
		return nil, fmt.Errorf("-workload is required with -schema")
	}
	return eng, addPreset(eng, preset)
}

// addWorkloadFile parses the ';'-separated workload format.
func addWorkloadFile(eng *legodb.Engine, text string) error {
	blocks := strings.Split(text, "\n;")
	n := 0
	for _, block := range blocks {
		weight := 1.0
		var queryLines []string
		for _, line := range strings.Split(block, "\n") {
			trimmed := strings.TrimSpace(line)
			if strings.HasPrefix(trimmed, "# weight") {
				w, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(trimmed, "# weight")), 64)
				if err != nil {
					return fmt.Errorf("bad weight line %q", trimmed)
				}
				weight = w
				continue
			}
			if strings.HasPrefix(trimmed, "#") || trimmed == ";" {
				continue
			}
			queryLines = append(queryLines, line)
		}
		src := strings.TrimSpace(strings.Join(queryLines, "\n"))
		if src == "" {
			continue
		}
		n++
		upper := strings.ToUpper(src)
		if strings.HasPrefix(upper, "INSERT ") || strings.HasPrefix(upper, "DELETE ") || strings.HasPrefix(upper, "MODIFY ") {
			if err := eng.AddUpdate(fmt.Sprintf("U%d", n), src, weight); err != nil {
				return err
			}
			continue
		}
		if err := eng.AddQuery(fmt.Sprintf("Q%d", n), src, weight); err != nil {
			return err
		}
	}
	if n == 0 {
		return fmt.Errorf("workload file holds no queries")
	}
	return nil
}

func addPreset(eng *legodb.Engine, preset string) error {
	add := func(names []string, weights []float64) error {
		for i, name := range names {
			q := imdb.Query(name)
			if err := eng.AddQuery(name, q.String(), weights[i]); err != nil {
				return err
			}
		}
		return nil
	}
	uniform := func(n int, w float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = w
		}
		return out
	}
	switch {
	case preset == "lookup":
		return add([]string{"Q8", "Q9", "Q11", "Q12", "Q13"}, uniform(5, 1))
	case preset == "publish":
		return add([]string{"Q15", "Q16", "Q17"}, uniform(3, 1))
	case preset == "w1":
		return add([]string{"F1", "F2", "F3", "F4"}, []float64{0.4, 0.4, 0.1, 0.1})
	case preset == "w2":
		return add([]string{"F1", "F2", "F3", "F4"}, []float64{0.1, 0.1, 0.4, 0.4})
	case strings.HasPrefix(preset, "mixed:"):
		k, err := strconv.ParseFloat(strings.TrimPrefix(preset, "mixed:"), 64)
		if err != nil || k < 0 || k > 1 {
			return fmt.Errorf("bad mixed preset %q (want mixed:<k in [0,1]>)", preset)
		}
		if err := add([]string{"Q8", "Q9", "Q11", "Q12", "Q13"}, uniform(5, k/5)); err != nil {
			return err
		}
		return add([]string{"Q15", "Q16", "Q17"}, uniform(3, (1-k)/3))
	default:
		return fmt.Errorf("unknown preset %q", preset)
	}
}
