// Command legodb runs the cost-based storage mapping engine from the
// command line: given an XML Schema (algebra notation), data statistics
// (Appendix A notation) and a workload file, it prints the chosen
// relational configuration, the translated SQL and the search trace.
//
// Usage:
//
//	legodb -schema schema.alg -stats stats.st -workload workload.xq [flags]
//
// The workload file holds one weighted query per block:
//
//	# weight 0.4
//	FOR $v IN imdb/show WHERE $v/year = 1999 RETURN $v/title
//	;
//	# weight 0.6
//	FOR $s IN imdb/show RETURN $s
//	;
//
// Without -schema, the embedded IMDB application (paper Appendices A–C)
// is used, with -preset choosing its workload.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"legodb"
	"legodb/internal/imdb"
)

func main() {
	var (
		schemaPath = flag.String("schema", "", "XML Schema file (algebra notation, or a DTD when the file ends in .dtd); empty = embedded IMDB schema")
		statsPath  = flag.String("stats", "", "statistics file (Appendix A notation); empty with -schema unset = embedded IMDB statistics")
		wkldPath   = flag.String("workload", "", "workload file (queries separated by ';' lines, '# weight w' comments)")
		preset     = flag.String("preset", "lookup", "embedded workload when -workload unset: lookup, publish, w1, w2, mixed:<k>")
		strategy   = flag.String("strategy", "greedy-so", "search strategy: greedy-so, greedy-si, greedy-full")
		beam       = flag.Int("beam", 0, "beam width (>1 switches from greedy to beam search)")
		threshold  = flag.Float64("threshold", 0, "stop when an iteration improves cost by less than this fraction")
		maxIter    = flag.Int("max-iterations", 0, "bound the greedy loop (0 = until convergence)")
		showSQL    = flag.Bool("sql", false, "print the translated SQL workload")
		showTrace  = flag.Bool("trace", true, "print the search trace")
		loadPath   = flag.String("load", "", "XML document to shred into the chosen configuration")
		queryText  = flag.String("query", "", "XQuery to execute against the loaded store")
		paramList  = flag.String("params", "", "query parameters: c1=value,c2=value")
		cacheFile  = flag.String("cachefile", "", "cost-cache snapshot file: loaded before the search, saved back after")
	)
	flag.Parse()

	eng, err := buildEngine(*schemaPath, *statsPath, *wkldPath, *preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "legodb:", err)
		os.Exit(1)
	}
	if *cacheFile != "" {
		if err := loadCacheFile(eng, *cacheFile); err != nil {
			fmt.Fprintln(os.Stderr, "legodb:", err)
			os.Exit(1)
		}
	}
	opts := legodb.AdviseOptions{Threshold: *threshold, MaxIterations: *maxIter, BeamWidth: *beam}
	switch *strategy {
	case "greedy-so":
		opts.Strategy = legodb.GreedySO
	case "greedy-si":
		opts.Strategy = legodb.GreedySI
	case "greedy-full":
		opts.Strategy = legodb.GreedyFull
		opts.WildcardLabels = map[string]float64{"nyt": 0.25}
	default:
		fmt.Fprintf(os.Stderr, "legodb: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	advice, err := eng.Advise(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "legodb:", err)
		os.Exit(1)
	}
	if *cacheFile != "" {
		if err := saveCacheFile(eng, *cacheFile); err != nil {
			fmt.Fprintln(os.Stderr, "legodb:", err)
			os.Exit(1)
		}
	}
	if *showTrace {
		fmt.Println("-- search --")
		fmt.Print(advice.Explain())
		fmt.Println()
	}
	fmt.Println("-- physical schema --")
	fmt.Print(advice.PSchema())
	fmt.Println()
	fmt.Println("-- relational configuration --")
	fmt.Print(advice.DDL())
	if *showSQL {
		fmt.Println("-- translated workload --")
		fmt.Print(advice.SQL())
	}
	if *loadPath != "" || *queryText != "" {
		if err := runStore(advice, *loadPath, *queryText, *paramList); err != nil {
			fmt.Fprintln(os.Stderr, "legodb:", err)
			os.Exit(1)
		}
	}
}

// loadCacheFile warms the engine's cost cache from a snapshot written by
// an earlier run; a missing file is fine (this run will create it).
func loadCacheFile(eng *legodb.Engine, path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	if _, err := eng.LoadCostCache(f); err != nil {
		return fmt.Errorf("cachefile %s: %w", path, err)
	}
	return nil
}

// saveCacheFile writes the engine's cost cache back to the snapshot file
// (atomically, via a sibling temp file).
func saveCacheFile(eng *legodb.Engine, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := eng.SaveCostCache(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// runStore instantiates the advised configuration, loads a document and
// executes a query, printing the result table.
func runStore(advice *legodb.Advice, loadPath, queryText, paramList string) error {
	store, err := advice.Open()
	if err != nil {
		return err
	}
	if loadPath != "" {
		f, err := os.Open(loadPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := store.LoadXML(f); err != nil {
			return fmt.Errorf("load %s: %w", loadPath, err)
		}
		fmt.Println("-- loaded --")
		for _, t := range store.Tables() {
			fmt.Printf("%-24s %8d rows\n", t, store.TableRows(t))
		}
	}
	if queryText == "" {
		return nil
	}
	params := legodb.Params{}
	if paramList != "" {
		for _, pair := range strings.Split(paramList, ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return fmt.Errorf("bad parameter %q (want name=value)", pair)
			}
			params[strings.TrimSpace(k)] = v
		}
	}
	plan, err := store.ExplainQuery(queryText)
	if err != nil {
		return err
	}
	fmt.Println("-- plan --")
	fmt.Println(plan)
	res, err := store.Query(queryText, params)
	if err != nil {
		return err
	}
	fmt.Println("-- result --")
	fmt.Println(strings.Join(res.Columns, "\t"))
	for _, row := range res.Rows {
		fmt.Println(strings.Join(row, "\t"))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
	return nil
}

func buildEngine(schemaPath, statsPath, wkldPath, preset string) (*legodb.Engine, error) {
	schemaText := imdb.SchemaText
	statsText := imdb.Stats().String()
	if schemaPath != "" {
		b, err := os.ReadFile(schemaPath)
		if err != nil {
			return nil, err
		}
		schemaText = string(b)
		statsText = ""
	}
	if statsPath != "" {
		b, err := os.ReadFile(statsPath)
		if err != nil {
			return nil, err
		}
		statsText = string(b)
	}
	var eng *legodb.Engine
	var err error
	switch {
	case strings.HasSuffix(schemaPath, ".dtd"):
		eng, err = legodb.NewFromDTD(schemaText)
	case strings.HasSuffix(schemaPath, ".xsd"):
		eng, err = legodb.NewFromXSD(schemaText)
	default:
		eng, err = legodb.New(schemaText)
	}
	if err != nil {
		return nil, err
	}
	if statsText != "" {
		if err := eng.SetStatisticsText(statsText); err != nil {
			return nil, err
		}
	}
	if wkldPath != "" {
		b, err := os.ReadFile(wkldPath)
		if err != nil {
			return nil, err
		}
		return eng, addWorkloadFile(eng, string(b))
	}
	if schemaPath != "" {
		return nil, fmt.Errorf("-workload is required with -schema")
	}
	return eng, addPreset(eng, preset)
}

// addWorkloadFile parses the ';'-separated workload format.
func addWorkloadFile(eng *legodb.Engine, text string) error {
	blocks := strings.Split(text, "\n;")
	n := 0
	for _, block := range blocks {
		weight := 1.0
		var queryLines []string
		for _, line := range strings.Split(block, "\n") {
			trimmed := strings.TrimSpace(line)
			if strings.HasPrefix(trimmed, "# weight") {
				w, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(trimmed, "# weight")), 64)
				if err != nil {
					return fmt.Errorf("bad weight line %q", trimmed)
				}
				weight = w
				continue
			}
			if strings.HasPrefix(trimmed, "#") || trimmed == ";" {
				continue
			}
			queryLines = append(queryLines, line)
		}
		src := strings.TrimSpace(strings.Join(queryLines, "\n"))
		if src == "" {
			continue
		}
		n++
		upper := strings.ToUpper(src)
		if strings.HasPrefix(upper, "INSERT ") || strings.HasPrefix(upper, "DELETE ") || strings.HasPrefix(upper, "MODIFY ") {
			if err := eng.AddUpdate(fmt.Sprintf("U%d", n), src, weight); err != nil {
				return err
			}
			continue
		}
		if err := eng.AddQuery(fmt.Sprintf("Q%d", n), src, weight); err != nil {
			return err
		}
	}
	if n == 0 {
		return fmt.Errorf("workload file holds no queries")
	}
	return nil
}

func addPreset(eng *legodb.Engine, preset string) error {
	add := func(names []string, weights []float64) error {
		for i, name := range names {
			q := imdb.Query(name)
			if err := eng.AddQuery(name, q.String(), weights[i]); err != nil {
				return err
			}
		}
		return nil
	}
	uniform := func(n int, w float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = w
		}
		return out
	}
	switch {
	case preset == "lookup":
		return add([]string{"Q8", "Q9", "Q11", "Q12", "Q13"}, uniform(5, 1))
	case preset == "publish":
		return add([]string{"Q15", "Q16", "Q17"}, uniform(3, 1))
	case preset == "w1":
		return add([]string{"F1", "F2", "F3", "F4"}, []float64{0.4, 0.4, 0.1, 0.1})
	case preset == "w2":
		return add([]string{"F1", "F2", "F3", "F4"}, []float64{0.1, 0.1, 0.4, 0.4})
	case strings.HasPrefix(preset, "mixed:"):
		k, err := strconv.ParseFloat(strings.TrimPrefix(preset, "mixed:"), 64)
		if err != nil || k < 0 || k > 1 {
			return fmt.Errorf("bad mixed preset %q (want mixed:<k in [0,1]>)", preset)
		}
		if err := add([]string{"Q8", "Q9", "Q11", "Q12", "Q13"}, uniform(5, k/5)); err != nil {
			return err
		}
		return add([]string{"Q15", "Q16", "Q17"}, uniform(3, (1-k)/3))
	default:
		return fmt.Errorf("unknown preset %q", preset)
	}
}
