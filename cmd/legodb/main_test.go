package main

import (
	"os"
	"path/filepath"
	"testing"

	"legodb"
	"legodb/internal/imdb"
)

func freshEngine(t *testing.T) *legodb.Engine {
	t.Helper()
	eng, err := legodb.New(imdb.SchemaText)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetStatisticsText(imdb.Stats().String()); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestAddWorkloadFile(t *testing.T) {
	eng := freshEngine(t)
	err := addWorkloadFile(eng, `# weight 0.4
FOR $v IN imdb/show WHERE $v/year = 1999 RETURN $v/title
;
# weight 0.5
FOR $s IN imdb/show RETURN $s
;
# weight 0.1
INSERT imdb/show/aka
;`)
	if err != nil {
		t.Fatalf("addWorkloadFile: %v", err)
	}
	advice, err := eng.Advise(legodb.AdviseOptions{Strategy: legodb.GreedySI, MaxIterations: 1})
	if err != nil {
		t.Fatalf("Advise over parsed workload: %v", err)
	}
	if advice.Cost() <= 0 {
		t.Fatal("non-positive cost")
	}
}

func TestAddWorkloadFileErrors(t *testing.T) {
	cases := []string{
		"",
		"# weight x\nFOR $v IN imdb/show RETURN $v\n;",
		"NOT A QUERY AT ALL\n;",
	}
	for _, src := range cases {
		if err := addWorkloadFile(freshEngine(t), src); err == nil {
			t.Errorf("addWorkloadFile(%q) succeeded, want error", src)
		}
	}
}

func TestAddPresets(t *testing.T) {
	for _, preset := range []string{"lookup", "publish", "w1", "w2", "mixed:0.3"} {
		if err := addPreset(freshEngine(t), preset); err != nil {
			t.Errorf("preset %q: %v", preset, err)
		}
	}
	for _, preset := range []string{"nope", "mixed:x", "mixed:2"} {
		if err := addPreset(freshEngine(t), preset); err == nil {
			t.Errorf("preset %q accepted, want error", preset)
		}
	}
}

func TestBuildEngineWithFiles(t *testing.T) {
	dir := t.TempDir()
	schemaFile := filepath.Join(dir, "s.alg")
	statsFile := filepath.Join(dir, "s.st")
	wkldFile := filepath.Join(dir, "w.xq")
	if err := os.WriteFile(schemaFile, []byte(`
type R = r[ X{0,*} ]
type X = x[ a[ String ] ]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(statsFile, []byte(`(["r";"x"], STcnt(100));`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wkldFile, []byte("FOR $x IN r/x RETURN $x/a\n;"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng, err := buildEngine(schemaFile, statsFile, wkldFile, "")
	if err != nil {
		t.Fatalf("buildEngine: %v", err)
	}
	if _, err := eng.Advise(legodb.AdviseOptions{}); err != nil {
		t.Fatalf("Advise: %v", err)
	}
	// -schema without -workload is an error.
	if _, err := buildEngine(schemaFile, statsFile, "", ""); err == nil {
		t.Fatal("schema without workload accepted")
	}
	// Missing files error.
	if _, err := buildEngine(filepath.Join(dir, "missing.alg"), "", wkldFile, ""); err == nil {
		t.Fatal("missing schema file accepted")
	}
}

func TestBuildEngineWithDTD(t *testing.T) {
	dir := t.TempDir()
	dtdFile := filepath.Join(dir, "s.dtd")
	wkldFile := filepath.Join(dir, "w.xq")
	if err := os.WriteFile(dtdFile, []byte(`
<!ELEMENT r (x*)>
<!ELEMENT x (a)>
<!ELEMENT a (#PCDATA)>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wkldFile, []byte("FOR $x IN r/x RETURN $x/a\n;"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng, err := buildEngine(dtdFile, "", wkldFile, "")
	if err != nil {
		t.Fatalf("buildEngine with DTD: %v", err)
	}
	advice, err := eng.Advise(legodb.AdviseOptions{})
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	if advice.Cost() <= 0 {
		t.Fatal("non-positive cost")
	}
}

func TestEmbeddedDefault(t *testing.T) {
	eng, err := buildEngine("", "", "", "w1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Advise(legodb.AdviseOptions{Strategy: legodb.GreedySI, MaxIterations: 1}); err != nil {
		t.Fatal(err)
	}
}
