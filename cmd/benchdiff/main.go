// Command benchdiff compares two cmd/bench reports (BENCH_search.json)
// and prints per-scenario deltas: ns/op, ops/sec, translations/op and
// the summary ratios. It is benchstat-shaped but deliberately
// non-gating — it always exits 0, because single-run wall-clock numbers
// on shared CI runners are far too noisy to fail a build on; the value
// is the printed delta in the job log and the archived artifact.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type row struct {
	Name              string  `json:"name"`
	Incremental       bool    `json:"incremental"`
	Workers           int     `json:"workers"`
	Mode              string  `json:"mode"`
	NsPerOp           float64 `json:"ns_per_op"`
	OpsPerSec         float64 `json:"ops_per_sec"`
	TranslationsPerOp float64 `json:"translations_per_op"`
	QueryCacheHitRate float64 `json:"query_cache_hit_rate"`
}

type report struct {
	Scenarios []row              `json:"scenarios"`
	Summary   map[string]float64 `json:"summary"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// key identifies a scenario row across reports. Engine-exec rows carry
// an executor mode instead of the incremental/workers axes.
func key(r row) string {
	if r.Mode != "" {
		return fmt.Sprintf("%s/mode=%s", r.Name, r.Mode)
	}
	return fmt.Sprintf("%s/inc=%v/w=%d", r.Name, r.Incremental, r.Workers)
}

func pct(old, new float64) string {
	if old == 0 {
		return "   n/a"
	}
	return fmt.Sprintf("%+5.1f%%", 100*(new-old)/old)
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		os.Exit(0) // non-gating even on misuse
	}
	old, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(0)
	}
	cur, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(0)
	}

	oldRows := map[string]row{}
	for _, r := range old.Scenarios {
		oldRows[key(r)] = r
	}
	fmt.Printf("%-32s %14s %14s %8s %8s\n", "scenario", "old ms/op", "new ms/op", "delta", "trans Δ")
	for _, nr := range cur.Scenarios {
		or, ok := oldRows[key(nr)]
		if !ok {
			fmt.Printf("%-32s %14s %14.1f %8s\n", key(nr), "(new)", nr.NsPerOp/1e6, "")
			continue
		}
		fmt.Printf("%-32s %14.1f %14.1f %8s %8s\n",
			key(nr), or.NsPerOp/1e6, nr.NsPerOp/1e6,
			pct(or.NsPerOp, nr.NsPerOp), pct(or.TranslationsPerOp, nr.TranslationsPerOp))
	}

	keys := make([]string, 0, len(cur.Summary))
	for k := range cur.Summary {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("\n%-40s %10s %10s %8s\n", "summary", "old", "new", "delta")
	for _, k := range keys {
		nv := cur.Summary[k]
		ov, ok := old.Summary[k]
		if !ok {
			fmt.Printf("%-40s %10s %10.3f %8s %s\n", k, "(new)", nv, "", judge(k, nv))
			continue
		}
		fmt.Printf("%-40s %10.3f %10.3f %8s %s\n", k, ov, nv, pct(ov, nv), judge(k, nv))
	}
}

// judge annotates the adaptation-loop keys whose absolute value carries
// meaning on its own (most summary keys are only meaningful as deltas):
// post_migrate_cost_ratio must stay below 1 or the re-advise cycle
// stopped paying for itself, and a cutover p99 in whole seconds means
// migrations are blocking the serving path.
func judge(key string, v float64) string {
	switch key {
	case "post_migrate_cost_ratio":
		if v >= 1 {
			return "!! re-advised config no cheaper than stale"
		}
	case "migrate_cutover_p99_ms":
		if v >= 1000 {
			return "!! cutover stalls clients"
		}
	case "drift_detect_checks":
		if v == 0 {
			return "!! drift scenario ran no checks"
		}
	}
	return ""
}
