// Command bench measures the search hot path — the fig10 and fig11
// searches — with incremental candidate evaluation on and off, and
// writes the metrics as JSON (ns/op, evals/op, translations/op,
// per-query cache hit rate, cost-cache traffic, and the logical-plan
// layer's block-sharing ratio: SPJ block costings requested by translated
// queries versus actually run by the optimizer). The engine-exec rows
// measure the relational executor itself: three IMDB query shapes under
// the vectorized batch executor versus the reference row-at-a-time path,
// with rows/sec and engine_exec_<shape>_speedup summary keys. The
// serve-load row drives the legodbd serving layer with an in-process
// HTTP load generator (concurrent clients, retry-with-backoff on 429)
// and reports qps, p50/p99 latency, shed rate and drain time as
// serve_load_* summary keys. CI archives the output as a non-gating
// artifact so regressions in translations/op, the sharing ratio, the
// executor speedups or serving latency are visible across commits.
//
// Usage:
//
//	bench [-o BENCH_search.json] [-runs 3]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"legodb"
	"legodb/internal/adapt"
	"legodb/internal/core"
	"legodb/internal/engine"
	"legodb/internal/experiments"
	"legodb/internal/faults"
	"legodb/internal/imdb"
	"legodb/internal/optimizer"
	"legodb/internal/pschema"
	"legodb/internal/relational"
	"legodb/internal/server"
	"legodb/internal/shred"
	"legodb/internal/xquery"
	"legodb/internal/xstats"
)

// metrics aggregates one scenario's counters across its searches.
type metrics struct {
	elapsed      time.Duration
	searches     int
	evals        uint64
	translations uint64
	qhits        uint64
	qmisses      uint64
	cacheHits    uint64
	cacheMisses  uint64
	dedups       uint64
	blocksReq    uint64
	blocksCosted uint64
	// registryRatio is the cost-cache hit ratio of the last fleet
	// engine's search (the one answered from the registry the earlier
	// engines warmed); zero outside the fleet scenario.
	registryRatio float64
}

func (m *metrics) add(res *core.Result, d time.Duration) {
	m.elapsed += d
	m.searches++
	m.evals += res.Evals
	m.translations += res.Translations
	m.qhits += res.QueryCacheHits
	m.qmisses += res.QueryCacheMisses
	m.cacheHits += res.Cache.Hits
	m.cacheMisses += res.Cache.Misses
	m.dedups += res.Cache.Dedups
	m.blocksReq += res.BlocksRequested
	m.blocksCosted += res.BlocksCosted
}

// scenarioResult is the JSON row for one (scenario, incremental,
// workers) triple. Per-op means per full scenario run (all of its
// searches once).
type scenarioResult struct {
	Name        string `json:"name"`
	Incremental bool   `json:"incremental"`
	Runs        int    `json:"runs"`
	// Workers is the candidate-evaluation worker bound the scenario ran
	// with (0 = the search default, GOMAXPROCS).
	Workers           int     `json:"workers"`
	Searches          int     `json:"searches_per_op"`
	NsPerOp           float64 `json:"ns_per_op"`
	OpsPerSec         float64 `json:"ops_per_sec"`
	EvalsPerOp        float64 `json:"evals_per_op"`
	TranslationsPerOp float64 `json:"translations_per_op"`
	QueryCacheHitRate float64 `json:"query_cache_hit_rate"`
	CostCacheHits     float64 `json:"cost_cache_hits_per_op"`
	CostCacheMisses   float64 `json:"cost_cache_misses_per_op"`
	// BlocksRequested counts SPJ block costings translated queries asked
	// the logical-plan layer for; BlocksCosted the subset the optimizer
	// actually ran. BlockSharing is their ratio — how many times fewer
	// block costings ran than were requested (1.0 = no sharing).
	BlocksRequested float64 `json:"blocks_requested_per_op"`
	BlocksCosted    float64 `json:"blocks_costed_per_op"`
	BlockSharing    float64 `json:"block_sharing_ratio"`
	// Dedups counts singleflight adoptions: costings answered by waiting
	// on a concurrent identical evaluation instead of re-running it.
	DedupsPerOp float64 `json:"dedups_per_op"`
	// RegistryHitRatio is the cost-cache hit ratio of the second fleet
	// engine's search — how much of a tenant's search the registry
	// answered from what the fleet already paid (fleet scenario only).
	RegistryHitRatio float64 `json:"registry_hit_ratio"`
	// Mode is the executor implementation of an engine-exec row ("batch"
	// or "rows"); empty for the search scenarios.
	Mode string `json:"mode,omitempty"`
	// RowsPerSec is the engine-exec scenario's result-row throughput.
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
	// Serve-load fields (the legodbd serving benchmark): concurrent
	// clients, successful-request latency percentiles, the fraction of
	// attempts shed with 429 by admission control, and how long the
	// graceful drain took after the load stopped.
	Clients  int     `json:"clients,omitempty"`
	P50Ms    float64 `json:"p50_ms,omitempty"`
	P99Ms    float64 `json:"p99_ms,omitempty"`
	ShedRate float64 `json:"shed_rate,omitempty"`
	DrainMs  float64 `json:"drain_ms,omitempty"`
}

type report struct {
	Scenarios []scenarioResult   `json:"scenarios"`
	Summary   map[string]float64 `json:"summary"`
}

// scenario is a named bundle of searches sharing one fresh cost cache
// per run (mirroring how cmd/experiments runs them). workers lists the
// candidate-evaluation worker bounds to sweep (nil = the search
// default only); modes lists the incremental settings to measure
// (nil = both off and on).
type scenario struct {
	name    string
	workers []int
	modes   []bool
	run     func(ctx context.Context, m *metrics, incremental bool, workers int) error
}

func searchOnce(ctx context.Context, m *metrics, wl *xquery.Workload, strategy core.Strategy, cache *core.CostCache, incremental bool, workers int) error {
	start := time.Now()
	res, err := core.GreedySearch(ctx, imdb.Schema(), wl, imdb.Stats(), core.Options{
		Strategy: strategy, Cache: cache, DisableIncremental: !incremental, Workers: workers,
	})
	if err != nil {
		return err
	}
	m.add(res, time.Since(start))
	return nil
}

// oracleRTT is the simulated per-costing round-trip latency of the
// scaling scenarios: each optimizer costing sleeps this long via the
// SiteQueryCost fault hook, modeling a cost oracle that lives out of
// process (the paper's optimizer was a separate server). Worker scaling
// on a CPU-bound search is invisible on a single-core runner; latency-
// bound costing is what the worker pool actually hides.
const oracleRTT = 2 * time.Millisecond

// scalingRun returns a scaling-scenario run function: one search on the
// lookup workload with the given strategy shape (greedy or beam), a
// fresh cache per op, and the oracle-latency hook armed for the op.
func scalingRun(beam bool) func(ctx context.Context, m *metrics, incremental bool, workers int) error {
	return func(ctx context.Context, m *metrics, incremental bool, workers int) error {
		restore := faults.EnableHook(faults.SiteQueryCost, -1, func() { time.Sleep(oracleRTT) })
		defer restore()
		if !beam {
			return searchOnce(ctx, m, imdb.LookupWorkload(), core.GreedySO, core.NewCostCache(0), incremental, workers)
		}
		start := time.Now()
		res, err := core.BeamSearch(ctx, imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), core.BeamOptions{
			Options: core.Options{
				Strategy: core.GreedySO, Cache: core.NewCostCache(0), DisableIncremental: !incremental, Workers: workers,
			},
			Width: 3,
		})
		if err != nil {
			return err
		}
		m.add(res, time.Since(start))
		return nil
	}
}

func scenarios() []scenario {
	return []scenario{
		{
			// Figure 10: greedy-so and greedy-si on the lookup and
			// publish workloads, one shared cache.
			name: "fig10",
			run: func(ctx context.Context, m *metrics, incremental bool, workers int) error {
				cache := core.NewCostCache(0)
				for _, wl := range []func() *xquery.Workload{imdb.LookupWorkload, imdb.PublishWorkload} {
					for _, strategy := range []core.Strategy{core.GreedySO, core.GreedySI} {
						if err := searchOnce(ctx, m, wl(), strategy, cache, incremental, workers); err != nil {
							return err
						}
					}
				}
				return nil
			},
		},
		{
			// Figure 11: the C[k] configuration searches plus the OPT
			// sweep — 14 greedy-si searches over overlapping mixed
			// workloads, one shared cache.
			name: "fig11",
			run: func(ctx context.Context, m *metrics, incremental bool, workers int) error {
				cache := core.NewCostCache(0)
				ks := []float64{0.25, 0.5, 0.75, 0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
				for _, k := range ks {
					if err := searchOnce(ctx, m, imdb.MixedWorkload(k), core.GreedySI, cache, incremental, workers); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			// Fleet: two engines attached to one cache registry run the
			// identical search back to back — the tenant-fleet sharing
			// case. The second engine's hit ratio is the registry's
			// payoff and is asserted ≥ 0.5 by the robustness tests.
			name: "fleet",
			run: func(ctx context.Context, m *metrics, incremental bool, workers int) error {
				reg := core.NewCacheRegistry(0)
				for i := 0; i < 2; i++ {
					start := time.Now()
					res, err := core.GreedySearch(ctx, imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), core.Options{
						Strategy: core.GreedySO, Cache: reg.Attach(), DisableIncremental: !incremental, Workers: workers,
					})
					if err != nil {
						return err
					}
					m.add(res, time.Since(start))
					if i == 1 {
						m.registryRatio = res.Cache.HitRatio()
					}
				}
				return nil
			},
		},
		{
			// Beam search (width 3) on the lookup workload.
			name: "beam-lookup",
			run: func(ctx context.Context, m *metrics, incremental bool, workers int) error {
				start := time.Now()
				res, err := core.BeamSearch(ctx, imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), core.BeamOptions{
					Options: core.Options{
						Strategy: core.GreedySO, Cache: core.NewCostCache(0), DisableIncremental: !incremental, Workers: workers,
					},
					Width: 3,
				})
				if err != nil {
					return err
				}
				m.add(res, time.Since(start))
				return nil
			},
		},
		{
			// Worker scaling, greedy: one greedy-so lookup search per op
			// with a fresh cache and a 2ms simulated cost-oracle RTT per
			// costing, swept over the worker-pool bound. Incremental only:
			// the sweep measures dispatch scalability, not cache savings.
			name:    "scaling-greedy",
			workers: []int{1, 2, 4, 8, 16},
			modes:   []bool{true},
			run:     scalingRun(false),
		},
		{
			// Worker scaling, beam (width 3): same sweep over the beam
			// search's per-front candidate dispatch.
			name:    "scaling-beam",
			workers: []int{1, 2, 4, 8, 16},
			modes:   []bool{true},
			run:     scalingRun(true),
		},
	}
}

// runEngineExec measures the relational executor itself rather than the
// search: three translated IMDB query shapes — a year-filter lookup
// (Q3), the full publish scan (Q16) and the hash-join-heavy 4-way join
// (Q12) — run against an all-inlined IMDB database under both the
// vectorized batch executor and the reference row-at-a-time path. Each
// (shape, mode) pair becomes one engine-exec-<shape> row with rows/sec
// throughput, and the summary gains engine_exec_<shape>_speedup keys
// (batch throughput over row-at-a-time).
func runEngineExec(ctx context.Context, runs int, rep *report) error {
	const shows = 400
	doc := imdb.Generate(imdb.GenOptions{Shows: shows, Seed: 17})
	s := imdb.Schema()
	if err := xstats.Annotate(s, xstats.Collect(doc)); err != nil {
		return err
	}
	ps, err := pschema.AllInlined(s)
	if err != nil {
		return err
	}
	cat, err := relational.Map(ps)
	if err != nil {
		return err
	}
	db := engine.NewDatabase(cat)
	if err := shred.New(ps, cat, db).Shred(doc); err != nil {
		return err
	}
	year, err := strconv.ParseInt(doc.Path("show", "year")[0].Text, 10, 64)
	if err != nil {
		return err
	}

	shapes := []struct {
		name, query string
		params      engine.Params
		// iters executions of the query form one op, sized so each op is
		// long enough to time while the slow reference mode stays sane.
		iters int
	}{
		{"lookup", "Q3", engine.Params{"c1": engine.IntVal(year)}, 40},
		{"publish", "Q16", nil, 10},
		{"join", "Q12", nil, 2},
	}
	for _, sh := range shapes {
		sq, err := xquery.Translate(imdb.Query(sh.query), ps, cat)
		if err != nil {
			return fmt.Errorf("%s (%s): %v", sh.name, sh.query, err)
		}
		nsByMode := map[string]float64{}
		for _, mode := range []struct {
			name string
			opts engine.Options
		}{{"batch", engine.Options{}}, {"rows", engine.Options{RowAtATime: true}}} {
			db.Exec = mode.opts
			var elapsed time.Duration
			outRows := 0
			for r := 0; r < runs; r++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				start := time.Now()
				for i := 0; i < sh.iters; i++ {
					rs, err := db.Execute(sq, sh.params)
					if err != nil {
						return fmt.Errorf("%s/%s: %v", sh.name, mode.name, err)
					}
					outRows = len(rs.Rows)
				}
				elapsed += time.Since(start)
			}
			res := scenarioResult{
				Name:    "engine-exec-" + sh.name,
				Mode:    mode.name,
				Runs:    runs,
				NsPerOp: float64(elapsed.Nanoseconds()) / float64(runs),
			}
			if res.NsPerOp > 0 {
				res.OpsPerSec = 1e9 / res.NsPerOp
				res.RowsPerSec = float64(outRows*sh.iters) / (res.NsPerOp / 1e9)
			}
			nsByMode[mode.name] = res.NsPerOp
			rep.Scenarios = append(rep.Scenarios, res)
		}
		if nsByMode["batch"] > 0 {
			rep.Summary["engine_exec_"+sh.name+"_speedup"] = nsByMode["rows"] / nsByMode["batch"]
		}
	}
	return nil
}

// runExecModesConstants re-runs the ablation-execmodes experiment — the
// cost model validated against both executors on both storage engines
// (heap rows and the colfile-frozen persistent image) — and records
// each est/meas calibration ratio as an execmodes_<query>_<storage>
// summary key. The persistent rows charge encoded chunk bytes instead
// of catalog row-width estimates, so their constants sit at a different
// level than the heap rows'; archiving both lets cmd/benchdiff print
// the shift across commits without gating on it.
func runExecModesConstants(ctx context.Context, rep *report) error {
	tbl, err := experiments.AblationExecModes(ctx)
	if err != nil {
		return err
	}
	for _, row := range tbl.Rows {
		// Columns: query, storage, estimated, meas batch, meas rows,
		// est/meas, speedup.
		ratio, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			return fmt.Errorf("est/meas cell %q: %v", row[5], err)
		}
		key := "execmodes_" + strings.ReplaceAll(row[0], "-", "_") + "_" + row[1]
		rep.Summary[key] = ratio
	}
	return nil
}

// runServeLoad measures the serving layer end to end: a resident
// legodbd server (small admission budget so shedding actually happens)
// under an in-process HTTP load generator — concurrent clients posting
// the IMDB lookup query, retrying shed requests with jittered
// exponential backoff. It reports qps, p50/p99 latency of successful
// requests, the shed rate, and how long the post-load graceful drain
// took; the summary gains serve_load_* keys.
func runServeLoad(ctx context.Context, rep *report) error {
	const (
		clients   = 32
		perClient = 40
		attempts  = 10
	)
	// The admission budget is deliberately tight for 32 clients — four
	// slots and a shallow queue against a mix with heavy joins — so
	// overload is real and the shed/retry path is part of what's
	// measured, not just the happy path.
	srv, err := server.New(server.Config{
		MaxInflight:    4,
		QueueDepth:     4,
		QueueWait:      10 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
		DrainTimeout:   5 * time.Second,
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		return err
	}
	if err := srv.AddTenant(ctx, server.TenantSpec{
		Name:   "bench",
		Schema: imdb.SchemaText,
		Stats:  imdb.StatsText,
		Config: "all-inlined",
		Queries: []server.TenantQuery{
			{Name: "lookup", Text: `FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/year`, Weight: 1},
		},
	}); err != nil {
		return err
	}
	if err := srv.LoadDocument("bench", imdb.Generate(imdb.GenOptions{Shows: 200, Seed: 17})); err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())

	// The request mix: cheap point lookups with a heavy self-join (the
	// paper's Q12) every eighth request, so the admission slots stay
	// genuinely occupied and overload behavior is measurable.
	joinText := imdb.Query("Q12").String()
	makeBody := func(c, i int) []byte {
		if (c+i)%8 == 0 {
			b, _ := json.Marshal(map[string]any{"query": joinText})
			return b
		}
		b, _ := json.Marshal(map[string]any{
			"query":  `FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/year`,
			"params": map[string]string{"c1": fmt.Sprint(1990 + (c+i)%20)},
		})
		return b
	}

	var (
		mu        sync.Mutex
		latencies []float64 // ms, successful requests only
		shed      atomic.Int64
		failed    atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			for i := 0; i < perClient; i++ {
				body := makeBody(c, i)
				var ok bool
				reqStart := time.Now()
				for a := 0; a < attempts; a++ {
					resp, err := http.Post(ts.URL+"/tenants/bench/query", "application/json", bytes.NewReader(body))
					if err != nil {
						break
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						ok = true
						break
					}
					if resp.StatusCode != http.StatusTooManyRequests {
						break
					}
					shed.Add(1)
					// Honor Retry-After as a floor signal but cap the sleep:
					// the server advertises whole seconds, far coarser than
					// this benchmark's time budget.
					backoff := time.Duration(1<<a) * time.Millisecond
					if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
						if d := time.Duration(ra) * time.Millisecond; d > backoff {
							backoff = d
						}
					}
					backoff += time.Duration(rng.Int63n(int64(time.Millisecond) * (1 << a)))
					if backoff > 100*time.Millisecond {
						backoff = 100 * time.Millisecond
					}
					time.Sleep(backoff)
				}
				if ok {
					ms := float64(time.Since(reqStart).Microseconds()) / 1000
					mu.Lock()
					latencies = append(latencies, ms)
					mu.Unlock()
				} else {
					failed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	drainStart := time.Now()
	if err := srv.Drain(context.Background()); err != nil {
		return fmt.Errorf("drain: %v", err)
	}
	drainMs := float64(time.Since(drainStart).Microseconds()) / 1000
	ts.Close()

	if failed.Load() > 0 {
		return fmt.Errorf("%d requests failed after %d attempts", failed.Load(), attempts)
	}
	sort.Float64s(latencies)
	pctl := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	total := len(latencies) + int(shed.Load())
	res := scenarioResult{
		Name:     "serve-load",
		Runs:     1,
		Clients:  clients,
		Searches: len(latencies),
		P50Ms:    pctl(0.50),
		P99Ms:    pctl(0.99),
		DrainMs:  drainMs,
	}
	if len(latencies) > 0 {
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.NsPerOp = sum / float64(len(latencies)) * 1e6
		res.OpsPerSec = float64(len(latencies)) / wall.Seconds()
	}
	if total > 0 {
		res.ShedRate = float64(shed.Load()) / float64(total)
	}
	rep.Scenarios = append(rep.Scenarios, res)
	rep.Summary["serve_load_qps"] = res.OpsPerSec
	rep.Summary["serve_load_p50_ms"] = res.P50Ms
	rep.Summary["serve_load_p99_ms"] = res.P99Ms
	rep.Summary["serve_load_shed_rate"] = res.ShedRate
	rep.Summary["serve_load_drain_ms"] = res.DrainMs
	return nil
}

// driftLookups is the flipped workload the drift scenario pushes at a
// store advised for publishing: point lookups that want scalars inlined,
// the opposite of what the all-outlined baseline is good at.
var driftLookups = []struct {
	text   string
	params map[string]string
}{
	{`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/year`, map[string]string{"c1": "1995"}},
	{`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title`, map[string]string{"c1": "1999"}},
	{`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/year, $v/box_office`, map[string]string{"c1": "zzz"}},
}

// measuredLookupCost executes the flipped workload iters times and
// converts the engine's counter deltas into cost units with the
// optimizer's own constants — the same formula the cost-model ablation
// uses, so estimated and measured wins are comparable.
func measuredLookupCost(store *legodb.Store, m optimizer.CostModel, iters int) (float64, error) {
	before := store.Measured()
	for i := 0; i < iters; i++ {
		for _, q := range driftLookups {
			params := legodb.Params{}
			for k, v := range q.params {
				params[k] = v
			}
			if _, err := store.Query(q.text, params); err != nil {
				return 0, err
			}
		}
	}
	d := store.Measured()
	d.BytesRead -= before.BytesRead
	d.TuplesRead -= before.TuplesRead
	d.Probes -= before.Probes
	d.Scans -= before.Scans
	cost := m.SeekCost*float64(d.Scans) +
		d.BytesRead/m.PageSize*m.PageIOCost +
		float64(d.TuplesRead)*m.CPUTupleCost +
		float64(d.Probes)*m.ProbeCost
	return cost / float64(iters), nil
}

// runDrift measures the adaptation loop end to end. A store advised for
// a publish workload (installed all-outlined) has its traffic flip to
// point lookups; the drift controller detects the flip through the
// hysteresis gates, re-advises in the background and migrates the store
// live — table group by table group — while client goroutines keep
// querying. Reported: the measured engine cost of the flipped workload
// on the stale versus migrated configuration (post_migrate_cost_ratio,
// < 1 is the win), the drift checks run, the cutover write-lock hold
// time, and the p99 client latency observed while the re-advise and
// migration were in flight.
func runDrift(ctx context.Context, rep *report) error {
	const (
		shows     = 200
		observeN  = 64
		costIters = 5
		clients   = 4
	)
	eng, err := legodb.New(imdb.SchemaText)
	if err != nil {
		return err
	}
	if err := eng.SetStatisticsText(imdb.StatsText); err != nil {
		return err
	}
	if err := eng.AddQuery("publish", `FOR $v IN imdb/show RETURN $v`, 1); err != nil {
		return err
	}
	baseline, err := eng.EvaluateFixed("all-outlined")
	if err != nil {
		return err
	}
	store, err := baseline.Open()
	if err != nil {
		return err
	}
	if err := store.Load(imdb.Generate(imdb.GenOptions{Shows: shows, Seed: 17})); err != nil {
		return err
	}
	ctrl := adapt.New(eng, store, eng.Workload(), adapt.Config{
		SearchTimeout:  30 * time.Second,
		MaxEvaluations: 400,
	})

	// Phase 1: the declared workload. The controller sees no drift.
	for i := 0; i < 8; i++ {
		if _, err := store.Query(`FOR $v IN imdb/show RETURN $v`, nil); err != nil {
			return err
		}
	}
	if d, err := ctrl.Check(ctx, false); err != nil {
		return err
	} else if d.Migrated {
		return fmt.Errorf("undrifted store migrated: %+v", d)
	}

	// Phase 2: the workload flips to lookups. Measure what the flipped
	// traffic costs on the stale configuration.
	for i := 0; i < observeN; i++ {
		q := driftLookups[i%len(driftLookups)]
		params := legodb.Params{}
		for k, v := range q.params {
			params[k] = v
		}
		if _, err := store.Query(q.text, params); err != nil {
			return err
		}
	}
	model := optimizer.DefaultModel()
	staleCost, err := measuredLookupCost(store, model, costIters)
	if err != nil {
		return err
	}

	// Phase 3: the controller reacts while clients keep querying; their
	// latencies across the re-advise + migration window bound the
	// availability impact of the cutover.
	var (
		latMu     sync.Mutex
		latencies []float64
		clientErr atomic.Value
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := driftLookups[(c+i)%len(driftLookups)]
				params := legodb.Params{}
				for k, v := range q.params {
					params[k] = v
				}
				qs := time.Now()
				if _, err := store.Query(q.text, params); err != nil {
					clientErr.Store(err)
					return
				}
				latMu.Lock()
				latencies = append(latencies, float64(time.Since(qs).Microseconds())/1000)
				latMu.Unlock()
			}
		}(c)
	}
	dec, err := ctrl.Check(ctx, false)
	close(stop)
	wg.Wait()
	if err != nil {
		return err
	}
	if e := clientErr.Load(); e != nil {
		return fmt.Errorf("client failed during migration: %v", e)
	}
	if !dec.Migrated {
		return fmt.Errorf("drifted store did not migrate: %+v", dec)
	}

	// Phase 4: the same flipped traffic on the migrated configuration.
	newCost, err := measuredLookupCost(store, model, costIters)
	if err != nil {
		return err
	}
	if staleCost <= 0 {
		return fmt.Errorf("measured stale cost is %v", staleCost)
	}
	ratio := newCost / staleCost

	sort.Float64s(latencies)
	pctl := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		return latencies[int(p*float64(len(latencies)-1))]
	}
	st := ctrl.Stats()
	res := scenarioResult{
		Name:     "drift",
		Runs:     1,
		Clients:  clients,
		Searches: len(latencies),
		P50Ms:    pctl(0.50),
		P99Ms:    pctl(0.99),
	}
	rep.Scenarios = append(rep.Scenarios, res)
	rep.Summary["drift_detect_checks"] = float64(st.Checks)
	rep.Summary["drift_score"] = dec.Drift
	rep.Summary["migrate_cutover_ms"] = float64(dec.Migration.Cutover.Microseconds()) / 1000
	rep.Summary["migrate_cutover_p99_ms"] = res.P99Ms
	rep.Summary["post_migrate_cost_ratio"] = ratio
	fmt.Printf("drift: stale=%.1f migrated=%.1f cost units/pass (ratio %.3f), cutover %.2fms, client p99 %.2fms\n",
		staleCost, newCost, ratio, rep.Summary["migrate_cutover_ms"], res.P99Ms)
	return nil
}

func main() {
	out := flag.String("o", "BENCH_search.json", "output file ('-' for stdout)")
	runs := flag.Int("runs", 3, "runs per scenario (metrics are averaged)")
	only := flag.String("only", "", "run only the named scenario")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()

	// An interrupt cancels the in-flight search; partially measured
	// scenarios are abandoned rather than reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	rep := report{Summary: map[string]float64{}}
	perOp := map[string]map[bool]scenarioResult{}
	scaling := map[string]map[int]scenarioResult{}
	for _, sc := range scenarios() {
		if *only != "" && sc.name != *only {
			continue
		}
		workerSet := sc.workers
		if workerSet == nil {
			workerSet = []int{0}
		}
		modes := sc.modes
		if modes == nil {
			modes = []bool{false, true}
		}
		for _, workers := range workerSet {
			for _, incremental := range modes {
				var m metrics
				for r := 0; r < *runs; r++ {
					if err := sc.run(ctx, &m, incremental, workers); err != nil {
						fmt.Fprintf(os.Stderr, "bench: %s: %v\n", sc.name, err)
						os.Exit(1)
					}
				}
				n := float64(*runs)
				res := scenarioResult{
					Name:              sc.name,
					Incremental:       incremental,
					Runs:              *runs,
					Workers:           workers,
					Searches:          m.searches / *runs,
					NsPerOp:           float64(m.elapsed.Nanoseconds()) / n,
					EvalsPerOp:        float64(m.evals) / n,
					TranslationsPerOp: float64(m.translations) / n,
					CostCacheHits:     float64(m.cacheHits) / n,
					CostCacheMisses:   float64(m.cacheMisses) / n,
				}
				if res.NsPerOp > 0 {
					res.OpsPerSec = 1e9 / res.NsPerOp
				}
				if m.qhits+m.qmisses > 0 {
					res.QueryCacheHitRate = float64(m.qhits) / float64(m.qhits+m.qmisses)
				}
				res.BlocksRequested = float64(m.blocksReq) / n
				res.BlocksCosted = float64(m.blocksCosted) / n
				if m.blocksCosted > 0 {
					res.BlockSharing = float64(m.blocksReq) / float64(m.blocksCosted)
				}
				res.DedupsPerOp = float64(m.dedups) / n
				res.RegistryHitRatio = m.registryRatio
				rep.Scenarios = append(rep.Scenarios, res)
				if sc.workers == nil {
					if perOp[sc.name] == nil {
						perOp[sc.name] = map[bool]scenarioResult{}
					}
					perOp[sc.name][incremental] = res
				} else if incremental {
					if scaling[sc.name] == nil {
						scaling[sc.name] = map[int]scenarioResult{}
					}
					scaling[sc.name][workers] = res
				}
			}
		}
	}
	if *only == "" || *only == "engine-exec" {
		if err := runEngineExec(ctx, *runs, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "bench: engine-exec: %v\n", err)
			os.Exit(1)
		}
	}
	if *only == "" || *only == "serve-load" {
		if err := runServeLoad(ctx, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "bench: serve-load: %v\n", err)
			os.Exit(1)
		}
	}
	if *only == "" || *only == "drift" {
		if err := runDrift(ctx, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "bench: drift: %v\n", err)
			os.Exit(1)
		}
	}
	if *only == "" || *only == "execmodes" {
		if err := runExecModesConstants(ctx, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "bench: execmodes: %v\n", err)
			os.Exit(1)
		}
	}
	var fullT, incT float64
	for name, pair := range perOp {
		full, inc := pair[false], pair[true]
		fullT += full.TranslationsPerOp
		incT += inc.TranslationsPerOp
		if inc.TranslationsPerOp > 0 {
			rep.Summary[name+"_translation_reduction"] = full.TranslationsPerOp / inc.TranslationsPerOp
		}
		if inc.NsPerOp > 0 {
			rep.Summary[name+"_speedup"] = full.NsPerOp / inc.NsPerOp
		}
		if inc.BlockSharing > 0 {
			rep.Summary[name+"_block_sharing"] = inc.BlockSharing
		}
		if inc.RegistryHitRatio > 0 {
			rep.Summary[name+"_registry_hit_ratio"] = inc.RegistryHitRatio
		}
	}
	if incT > 0 {
		rep.Summary["combined_translation_reduction"] = fullT / incT
	}
	// Scaling summaries: throughput at N workers over 1 worker, e.g.
	// scaling_greedy_speedup_8w.
	for name, byWorkers := range scaling {
		base, ok := byWorkers[1]
		if !ok || base.NsPerOp == 0 {
			continue
		}
		key := strings.ReplaceAll(name, "-", "_")
		for w, res := range byWorkers {
			if w == 1 || res.NsPerOp == 0 {
				continue
			}
			rep.Summary[fmt.Sprintf("%s_speedup_%dw", key, w)] = base.NsPerOp / res.NsPerOp
		}
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	for _, sc := range rep.Scenarios {
		if sc.Mode != "" {
			fmt.Printf("%-20s mode=%-5s %10.2fms/op %12.0f rows/sec\n",
				sc.Name, sc.Mode, sc.NsPerOp/1e6, sc.RowsPerSec)
			continue
		}
		if sc.Workers > 0 {
			fmt.Printf("%-13s workers=%-2d %13.1fms/op %8.3f ops/sec\n",
				sc.Name, sc.Workers, sc.NsPerOp/1e6, sc.OpsPerSec)
			continue
		}
		fmt.Printf("%-12s incremental=%-5v %8.1fms/op %7.0f translations/op %5.1f%% qcache hits %5.2fx block sharing\n",
			sc.Name, sc.Incremental, sc.NsPerOp/1e6, sc.TranslationsPerOp, 100*sc.QueryCacheHitRate, sc.BlockSharing)
	}
	fmt.Printf("combined translation reduction: %.2fx (written to %s)\n",
		rep.Summary["combined_translation_reduction"], *out)
}
