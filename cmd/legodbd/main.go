// Command legodbd is the resident document server: per-tenant legodb
// engines and loaded stores stay in memory behind an HTTP/JSON API with
// admission control, per-request deadlines, panic isolation and a
// graceful SIGTERM drain that snapshots the fleet's cost cache.
//
// Usage:
//
//	legodbd -addr :8080 [-demo 100] [-snapshot cache.snap] [flags]
//
// Endpoints:
//
//	GET  /healthz                    liveness (503 while draining)
//	GET  /stats                      serving + cache counters, per tenant
//	POST /tenants                    create a tenant from a JSON spec
//	POST /tenants/{t}/load           shred an XML document (body = XML)
//	POST /tenants/{t}/query          run an XQuery {"query": ..., "params": ...}
//	POST /tenants/{t}/delete         DeleteWhere {"query": ..., "params": ...}
//	POST /tenants/{t}/insert         InsertChild {..., "fragment": "<aka>x</aka>"}
//	POST /tenants/{t}/readvise       adaptation check now: score drift, re-advise,
//	                                 migrate live if the winner clears the margin
//
// With -demo N the server boots with an "imdb" tenant (cost-advised over
// the embedded workload) preloaded with an N-show synthetic document, so
// a bare binary is immediately curl-able.
//
// With -adapt D the server runs the adaptation loop: every D it compares
// each tenant's observed workload (accumulated from served traffic)
// against the one it was advised for, and when drift clears the
// hysteresis threshold it re-runs the cost-based search in the
// background and migrates the store live — table group by table group,
// with serving blocked only for the final cutover swap — if the new
// configuration's estimated cost wins by the margin.
//
// Exit codes: 0 clean drain, 1 runtime failure, 2 bad usage, 3 drain
// forced by the -drain-timeout deadline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"legodb/internal/imdb"
	"legodb/internal/server"
)

const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
	exitForced  = 3
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxInflight  = flag.Int("max-inflight", 64, "max concurrently executing requests")
		queueDepth   = flag.Int("queue-depth", 0, "max requests queued beyond max-inflight before shedding (0 = 2x max-inflight, negative = shed immediately)")
		queueWait    = flag.Duration("queue-wait", 100*time.Millisecond, "max time a queued request waits for a slot")
		timeout      = flag.Duration("timeout", 5*time.Second, "per-request execution deadline")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "max time in-flight requests get to finish after SIGTERM")
		perTenant    = flag.Int("tenant-inflight", 0, "per-tenant in-flight cap (0 = max-inflight)")
		snapshot     = flag.String("snapshot", "", "cost-cache snapshot path: loaded at boot (corrupt files are quarantined), saved on drain")
		storeDir     = flag.String("store-dir", "", "directory for per-tenant table snapshots (<name>.store): reopened at tenant creation, saved on drain (corrupt files are quarantined)")
		demo         = flag.Int("demo", 0, "boot with an 'imdb' demo tenant preloaded with this many shows")
		adaptEvery   = flag.Duration("adapt", 0, "adaptation check interval: re-advise and live-migrate tenants whose observed workload drifted (0 = manual /readvise only)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "legodbd: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		return exitUsage
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	s, err := server.New(server.Config{
		MaxInflight:       *maxInflight,
		QueueDepth:        *queueDepth,
		QueueWait:         *queueWait,
		RequestTimeout:    *timeout,
		DrainTimeout:      *drainTimeout,
		PerTenantInflight: *perTenant,
		SnapshotPath:      *snapshot,
		StoreDir:          *storeDir,
		AdaptInterval:     *adaptEvery,
		Logger:            log,
	})
	if err != nil {
		log.Error("boot failed", "error", err)
		return exitRuntime
	}
	if *demo > 0 {
		if err := bootDemo(s, *demo); err != nil {
			log.Error("demo tenant failed", "error", err)
			return exitRuntime
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "error", err)
		return exitRuntime
	}
	log.Info("legodbd serving", "addr", ln.Addr().String(),
		"max_inflight", *maxInflight, "timeout", *timeout)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := s.Run(ctx, ln); err != nil {
		log.Error("server exited", "error", err)
		if errors.Is(err, server.ErrDrainForced) {
			return exitForced
		}
		return exitRuntime
	}
	return exitOK
}

// bootDemo creates the embedded IMDB tenant — schema and statistics from
// the paper's appendices, configuration advised over the lookup/publish
// workload — and preloads a synthetic document at the requested scale.
func bootDemo(s *server.Server, shows int) error {
	spec := server.TenantSpec{
		Name:   "imdb",
		Schema: imdb.SchemaText,
		Stats:  imdb.StatsText,
		Config: "advised",
		Queries: []server.TenantQuery{
			{Name: "lookup", Text: `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`, Weight: 0.7},
			{Name: "publish", Text: `FOR $v IN imdb/show RETURN $v`, Weight: 0.3},
		},
	}
	if err := s.AddTenant(context.Background(), spec); err != nil {
		return err
	}
	// A tenant reopened from a -store-dir snapshot already holds its
	// data; loading the demo document again would double it.
	if st := s.TenantStore("imdb"); st != nil && st.TotalRows() > 0 {
		return nil
	}
	return s.LoadDocument("imdb", imdb.Generate(imdb.GenOptions{Shows: shows, Seed: 1}))
}
