package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"legodb/internal/faults"
	"legodb/internal/server"
)

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func getStatus(url string) int {
	resp, err := http.Get(url)
	if err != nil {
		return -1
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestSigtermDrainsAndSnapshots boots the demo server the way main does
// (listener + signal.NotifyContext + Run), holds one request in flight
// through a gated failpoint, delivers a real SIGTERM to the process,
// and asserts the drain contract: no new admissions, the held request
// completes with 200, Run returns a clean nil, and the cost-cache
// snapshot it wrote boots the next server warm.
func TestSigtermDrainsAndSnapshots(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "cache.snap")
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	s, err := server.New(server.Config{
		MaxInflight:  4,
		DrainTimeout: 10 * time.Second,
		SnapshotPath: snap,
		Logger:       log,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := bootDemo(s, 5); err != nil {
		t.Fatalf("bootDemo: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx, ln) }()
	waitUntil(t, "server up", func() bool { return getStatus(base+"/healthz") == http.StatusOK })

	// Hold one admitted request in flight at the serving failpoint.
	gate := make(chan struct{})
	entered := make(chan struct{})
	restore := faults.EnableHook(faults.SiteServe, 1, func() {
		close(entered)
		<-gate
	})
	defer restore()

	body, _ := json.Marshal(map[string]any{
		"query":  `FOR $v IN imdb/show RETURN $v/title`,
		"params": map[string]string{},
	})
	heldCode := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/tenants/imdb/query", "application/json", bytes.NewReader(body))
		if err != nil {
			heldCode <- -1
			return
		}
		resp.Body.Close()
		heldCode <- resp.StatusCode
	}()
	<-entered

	// Real signal delivery, as systemd would send it.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	waitUntil(t, "drain to start", func() bool {
		return getStatus(base+"/healthz") == http.StatusServiceUnavailable
	})

	// New work bounces while the held request is still in flight.
	resp, err := http.Post(base+"/tenants/imdb/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("query during drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain = %d, want 503", resp.StatusCode)
	}

	close(gate)
	if code := <-heldCode; code != http.StatusOK {
		t.Fatalf("held request = %d, want 200", code)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after drain")
	}

	// The drain snapshot warms the next boot.
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	s2, err := server.New(server.Config{SnapshotPath: snap, Logger: log})
	if err != nil {
		t.Fatalf("New from drain snapshot: %v", err)
	}
	if w := s2.BootWarning(); w != "" {
		t.Fatalf("drain snapshot produced boot warning %q", w)
	}
	if s2.Registry().Stats().Cache.Entries == 0 {
		t.Fatal("drain snapshot reloaded zero cost-cache entries")
	}
}

// TestDemoTenantServes checks the -demo boot path end to end: the
// advised imdb tenant exists, holds rows, and answers the embedded
// lookup query.
func TestDemoTenantServes(t *testing.T) {
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	s, err := server.New(server.Config{Logger: log})
	if err != nil {
		t.Fatal(err)
	}
	if err := bootDemo(s, 8); err != nil {
		t.Fatalf("bootDemo: %v", err)
	}
	st := s.StatsSnapshot()
	tn, ok := st.Tenants["imdb"]
	if !ok || !tn.Ready || tn.Rows == 0 {
		t.Fatalf("demo tenant stats = %+v", tn)
	}
	store := s.TenantStore("imdb")
	res, err := store.Query(`FOR $v IN imdb/show RETURN $v/title`, nil)
	if err != nil {
		t.Fatalf("demo query: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("demo query returned no rows")
	}
}
