// Command imdbgen emits a synthetic IMDB XML document whose statistics
// match the paper's Appendix A at a configurable scale. It substitutes
// the real Internet Movie Database dump the authors used (see DESIGN.md).
//
// Usage:
//
//	imdbgen -shows 1000 -seed 42 > imdb.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"legodb/internal/imdb"
	"legodb/internal/xmltree"
	"legodb/internal/xstats"
)

func collect(doc *xmltree.Node) *xstats.Set { return xstats.Collect(doc) }

func main() {
	var (
		shows   = flag.Int("shows", 1000, "number of show elements (directors/actors scale proportionally)")
		seed    = flag.Int64("seed", 1, "random seed")
		nytFrac = flag.Float64("nyt", 0.25, "fraction of reviews from the New York Times")
		stats   = flag.Bool("stats", false, "print collected statistics instead of the document")
	)
	flag.Parse()
	if *shows <= 0 {
		fmt.Fprintf(os.Stderr, "imdbgen: -shows must be positive (got %d)\n", *shows)
		os.Exit(2)
	}
	if *nytFrac < 0 || *nytFrac > 1 {
		fmt.Fprintf(os.Stderr, "imdbgen: -nyt must be in [0,1] (got %g)\n", *nytFrac)
		os.Exit(2)
	}
	doc := imdb.Generate(imdb.GenOptions{Shows: *shows, Seed: *seed, NYTFraction: *nytFrac})
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *stats {
		set := collect(doc)
		fmt.Fprint(w, set)
		return
	}
	if err := doc.Encode(w); err != nil {
		fmt.Fprintln(os.Stderr, "imdbgen:", err)
		os.Exit(1)
	}
}
