// Command experiments regenerates the paper's evaluation artifacts: each
// subcommand prints the same rows or series as one table or figure of
// Section 5 (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	experiments           # run everything
//	experiments fig6 tab2 # run selected experiments
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"legodb/internal/experiments"
)

func main() {
	// run carries the exit code out so deferred cleanups (profile and
	// cache-file writers) execute before os.Exit.
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text, csv, markdown")
	nocache := flag.Bool("nocache", false, "disable the shared cost cache (every configuration pays a full evaluation)")
	noincremental := flag.Bool("noincremental", false, "disable incremental candidate evaluation (delta re-mapping, per-query cost reuse, catalog caching)")
	maxiter := flag.Int("maxiter", 0, "bound search iterations per experiment (0 = until convergence); for smoke runs")
	cachestats := flag.Bool("cachestats", false, "print cost-cache hit/miss counters to stderr after each experiment")
	cachefile := flag.String("cachefile", "", "cost-cache snapshot file: loaded before the runs, saved back after")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return 0
	}
	experiments.EnableCache(!*nocache)
	experiments.EnableIncremental(!*noincremental)
	experiments.MaxIterations = *maxiter
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
			}
		}()
	}
	if *cachefile != "" {
		n, err := experiments.LoadCacheFile(*cachefile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cachefile: %v\n", err)
			return 1
		}
		if *cachestats && n > 0 {
			fmt.Fprintf(os.Stderr, "experiments: loaded %d cached costs from %s\n", n, *cachefile)
		}
		defer func() {
			if err := experiments.SaveCacheFile(*cachefile); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -cachefile: %v\n", err)
			}
		}()
	}
	names := flag.Args()
	if len(names) == 0 {
		names = experiments.Names()
	}
	failed := false
	for _, name := range names {
		before := experiments.CacheStats()
		tbl, err := experiments.Run(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			failed = true
			continue
		}
		if *cachestats {
			st := experiments.CacheStats().Sub(before)
			fmt.Fprintf(os.Stderr, "experiments: %s: cache %d hits, %d misses (%.0f%% hit rate), %d entries total\n",
				name, st.Hits, st.Misses, hitRate(st.Hits, st.Misses), st.Entries)
		}
		switch *format {
		case "csv":
			fmt.Print(tbl.CSV())
			fmt.Println()
		case "markdown":
			fmt.Println(tbl.Markdown())
		default:
			fmt.Println(tbl)
		}
	}
	if failed {
		return 1
	}
	return 0
}

func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}
