// Command experiments regenerates the paper's evaluation artifacts: each
// subcommand prints the same rows or series as one table or figure of
// Section 5 (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	experiments           # run everything
//	experiments fig6 tab2 # run selected experiments
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"legodb/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text, csv, markdown")
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	names := flag.Args()
	if len(names) == 0 {
		names = experiments.Names()
	}
	failed := false
	for _, name := range names {
		tbl, err := experiments.Run(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			failed = true
			continue
		}
		switch *format {
		case "csv":
			fmt.Print(tbl.CSV())
			fmt.Println()
		case "markdown":
			fmt.Println(tbl.Markdown())
		default:
			fmt.Println(tbl)
		}
	}
	if failed {
		os.Exit(1)
	}
}
