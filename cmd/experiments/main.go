// Command experiments regenerates the paper's evaluation artifacts: each
// subcommand prints the same rows or series as one table or figure of
// Section 5 (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	experiments           # run everything
//	experiments fig6 tab2 # run selected experiments
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"legodb/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text, csv, markdown")
	nocache := flag.Bool("nocache", false, "disable the shared cost cache (every configuration pays a full evaluation)")
	maxiter := flag.Int("maxiter", 0, "bound search iterations per experiment (0 = until convergence); for smoke runs")
	cachestats := flag.Bool("cachestats", false, "print cost-cache hit/miss counters to stderr after each experiment")
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	experiments.EnableCache(!*nocache)
	experiments.MaxIterations = *maxiter
	names := flag.Args()
	if len(names) == 0 {
		names = experiments.Names()
	}
	failed := false
	for _, name := range names {
		before := experiments.CacheStats()
		tbl, err := experiments.Run(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			failed = true
			continue
		}
		if *cachestats {
			st := experiments.CacheStats().Sub(before)
			fmt.Fprintf(os.Stderr, "experiments: %s: cache %d hits, %d misses (%.0f%% hit rate), %d entries total\n",
				name, st.Hits, st.Misses, hitRate(st.Hits, st.Misses), st.Entries)
		}
		switch *format {
		case "csv":
			fmt.Print(tbl.CSV())
			fmt.Println()
		case "markdown":
			fmt.Println(tbl.Markdown())
		default:
			fmt.Println(tbl)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}
