// Command experiments regenerates the paper's evaluation artifacts: each
// subcommand prints the same rows or series as one table or figure of
// Section 5 (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	experiments           # run everything
//	experiments fig6 tab2 # run selected experiments
//	experiments -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"legodb/internal/experiments"
)

// Exit codes: 0 success, 1 runtime failure, 2 usage error, 3 the
// -timeout deadline expired (or the run was interrupted) before every
// requested experiment finished.
const (
	exitOK       = 0
	exitRuntime  = 1
	exitUsage    = 2
	exitDeadline = 3
)

func main() {
	// run carries the exit code out so deferred cleanups (profile and
	// cache-file writers) execute before os.Exit.
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text, csv, markdown")
	nocache := flag.Bool("nocache", false, "disable the shared cost cache (every configuration pays a full evaluation)")
	noincremental := flag.Bool("noincremental", false, "disable incremental candidate evaluation (delta re-mapping, per-query cost reuse, catalog caching)")
	noshare := flag.Bool("noshare", false, "disable shared subplan costing (every SPJ block is costed by the optimizer directly); output is byte-identical either way")
	maxiter := flag.Int("maxiter", 0, "bound search iterations per experiment (0 = until convergence); for smoke runs")
	workers := flag.Int("workers", 0, "bound the candidate-evaluation worker pool per search (0 = GOMAXPROCS, 1 = sequential); results are byte-identical at any bound")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none); expired searches report their anytime best-so-far")
	cachestats := flag.Bool("cachestats", false, "print cost-cache hit/miss counters to stderr after each experiment")
	registry := flag.Bool("registry", false, "route costings through a cross-engine cache registry (fleet mode) and print fleet-wide counters after the run; results are identical either way")
	cachefile := flag.String("cachefile", "", "cost-cache snapshot file: loaded before the runs, saved back after; a corrupt file is quarantined and the runs continue cold")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return exitOK
	}
	switch *format {
	case "text", "csv", "markdown":
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown -format %q (want text, csv, or markdown)\n", *format)
		return exitUsage
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	experiments.EnableCache(!*nocache)
	experiments.EnableIncremental(!*noincremental)
	experiments.EnableSharing(!*noshare)
	experiments.SetWorkers(*workers)
	experiments.EnableRegistry(*registry)
	experiments.MaxIterations = *maxiter
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			return exitRuntime
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			return exitRuntime
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
			}
		}()
	}
	if *cachefile != "" {
		// A load failure is never fatal: a corrupt snapshot has been
		// quarantined (warning), and any other failure just means the
		// runs start with a cold cache.
		n, warning, err := experiments.LoadCacheFile(*cachefile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: warning: -cachefile %s: %v (continuing with a cold cache)\n", *cachefile, err)
		} else if warning != "" {
			fmt.Fprintf(os.Stderr, "experiments: warning: %s\n", warning)
		} else if *cachestats && n > 0 {
			fmt.Fprintf(os.Stderr, "experiments: loaded %d cached costs from %s\n", n, *cachefile)
		}
		defer func() {
			if err := experiments.SaveCacheFile(*cachefile); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -cachefile: %v\n", err)
			}
		}()
	}
	names := flag.Args()
	if len(names) == 0 {
		names = experiments.Names()
	}
	failed := false
	expired := false
	for _, name := range names {
		experiments.AttachEngine()
		before := experiments.CacheStats()
		beforeBlocks := experiments.PlanStats()
		tbl, err := experiments.RunContext(ctx, name)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "experiments: %s: stopped early: %v\n", name, err)
				expired = true
				continue
			}
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			failed = true
			continue
		}
		if ctx.Err() != nil {
			// The experiment finished on anytime best-so-far results;
			// flag the truncation but still print what it produced.
			expired = true
		}
		if *cachestats {
			st := experiments.CacheStats().Sub(before)
			fmt.Fprintf(os.Stderr, "experiments: %s: cache %d hits, %d misses (%.0f%% hit rate), %d entries total\n",
				name, st.Hits, st.Misses, hitRate(st.Hits, st.Misses), st.Entries)
			bs := experiments.PlanStats().Sub(beforeBlocks)
			fmt.Fprintf(os.Stderr, "experiments: %s: blocks %d shared, %d costed (%.0f%% share rate), %d entries total\n",
				name, bs.Hits, bs.Misses, hitRate(bs.Hits, bs.Misses), bs.Entries)
		}
		switch *format {
		case "csv":
			fmt.Print(tbl.CSV())
			fmt.Println()
		case "markdown":
			fmt.Println(tbl.Markdown())
		default:
			fmt.Println(tbl)
		}
	}
	if *registry {
		rs := experiments.RegistryStats()
		fmt.Fprintf(os.Stderr, "experiments: registry: %d engines, %d hits, %d misses (%.0f%% hit rate), %d dedups, %d evictions, %d entries\n",
			rs.Engines, rs.Cache.Hits, rs.Cache.Misses, hitRate(rs.Cache.Hits, rs.Cache.Misses),
			rs.Cache.Dedups, rs.Cache.Evictions, rs.Cache.Entries)
	}
	if failed {
		return exitRuntime
	}
	if expired {
		fmt.Fprintf(os.Stderr, "experiments: run truncated by -timeout %s or interrupt; results above are anytime best-so-far\n",
			timeoutString(*timeout))
		return exitDeadline
	}
	return exitOK
}

func timeoutString(d time.Duration) string {
	if d <= 0 {
		return "(none)"
	}
	return d.String()
}

func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}
