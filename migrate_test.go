package legodb

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"legodb/internal/faults"
	"legodb/internal/imdb"
)

// migrationFixture builds an engine over the IMDB schema and statistics,
// opens a store under the all-inlined baseline, loads a synthetic
// document, and advises a lookup-heavy target configuration that differs
// from the installed one — the raw material for every migration test.
func migrationFixture(t *testing.T, shows int) (*Engine, *Store, *Advice) {
	t.Helper()
	eng, err := New(imdb.SchemaText)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetStatisticsText(imdb.StatsText); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddQuery("pub", `FOR $v IN imdb/show RETURN $v`, 1); err != nil {
		t.Fatal(err)
	}
	baseline, err := eng.EvaluateFixed("all-inlined")
	if err != nil {
		t.Fatal(err)
	}
	store, err := baseline.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Load(imdb.Generate(imdb.GenOptions{Shows: shows, Seed: 7})); err != nil {
		t.Fatal(err)
	}
	target, err := eng.AdviseWorkload(t.Context(), imdb.LookupWorkload(), AdviseOptions{Strategy: GreedySI, MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if target.PSchema() == store.PSchema() {
		t.Fatal("fixture is useless: advised target equals the installed configuration")
	}
	return eng, store, target
}

// publishString serializes the store's published documents to one
// string, for byte-identity comparison across a migration.
func publishString(t *testing.T, s *Store) string {
	t.Helper()
	docs, err := s.Publish()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, d := range docs {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestMigrateDifferential is the acceptance criterion in miniature:
// after a live migration the published image is byte-identical, queries
// — including a PreparedQuery planned against the old catalog — return
// identical results, and the store reports the new configuration.
func TestMigrateDifferential(t *testing.T) {
	_, store, target := migrationFixture(t, 40)

	const q = `FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/year`
	pq, err := store.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	oldCat := store.catalog
	prePub := publishString(t, store)
	preRes, err := pq.Run(Params{"c1": "1995"})
	if err != nil {
		t.Fatal(err)
	}
	preDDL := store.DDL()

	rep, err := store.MigrateTo(target, MigrateOptions{TablesPerGroup: 2})
	if err != nil {
		t.Fatalf("MigrateTo: %v", err)
	}
	if rep.Groups < 2 {
		t.Errorf("expected multiple table groups, got %d", rep.Groups)
	}
	if rep.Restarts != 0 || rep.RebuiltUnderLock {
		t.Errorf("quiet store should migrate on the first attempt: %+v", rep)
	}
	if rep.Documents == 0 {
		t.Error("report claims zero documents migrated")
	}

	if got := store.PSchema(); got != target.PSchema() {
		t.Error("store does not report the migrated configuration")
	}
	if store.DDL() == preDDL {
		t.Error("DDL unchanged after migration to a different configuration")
	}
	if postPub := publishString(t, store); postPub != prePub {
		t.Error("published image not byte-identical after migration")
	}
	// The prepared query must transparently re-plan against the new
	// catalog and agree row-for-row.
	postRes, err := pq.Run(Params{"c1": "1995"})
	if err != nil {
		t.Fatalf("prepared run after migration: %v", err)
	}
	if fmt.Sprint(preRes.Rows) != fmt.Sprint(postRes.Rows) {
		t.Errorf("prepared query rows diverged:\npre:  %v\npost: %v", preRes.Rows, postRes.Rows)
	}
	// White-box: the plan cache must now be bound to the new catalog
	// (the run above forced the lazy re-translation).
	if pq.cat == oldCat || pq.cat != store.catalog {
		t.Error("prepared query was not re-planned against the new catalog")
	}
	adhoc, err := store.Query(q, Params{"c1": "1995"})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(adhoc.Rows) != fmt.Sprint(postRes.Rows) {
		t.Error("ad-hoc and prepared results disagree after migration")
	}
}

// TestMigrateAbortAtGroupBoundary proves a fault at the first
// table-group rebuild leaves the old image untouched and serving.
func TestMigrateAbortAtGroupBoundary(t *testing.T) {
	_, store, target := migrationFixture(t, 20)
	prePub := publishString(t, store)
	prePS := store.PSchema()

	defer faults.Enable(faults.SiteMigrate, 1, false)()
	if _, err := store.MigrateTo(target); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if store.PSchema() != prePS {
		t.Error("aborted migration changed the installed configuration")
	}
	if publishString(t, store) != prePub {
		t.Error("aborted migration corrupted the serving image")
	}
	if _, err := store.Query(`FOR $v IN imdb/show RETURN $v/title`, nil); err != nil {
		t.Errorf("store not serving after aborted migration: %v", err)
	}
}

// TestMigrateAbortAtCutover panics inside the cutover critical section
// (write lock held). MigrateTo must recover, release the lock, and leave
// the old image serving.
func TestMigrateAbortAtCutover(t *testing.T) {
	_, store, target := migrationFixture(t, 20)
	prePub := publishString(t, store)
	prePS := store.PSchema()

	// One huge group ⇒ the site fires exactly twice: once before the
	// group rebuild (hit 1, let it pass) and once at cutover (hit 2,
	// panic with the write lock held).
	hits := 0
	defer faults.EnableHook(faults.SiteMigrate, -1, func() {
		hits++
		if hits == 2 {
			panic("injected at cutover")
		}
	})()
	_, err := store.MigrateTo(target, MigrateOptions{TablesPerGroup: 1 << 20})
	if err == nil || !strings.Contains(err.Error(), "injected at cutover") {
		t.Fatalf("want recovered cutover panic, got %v", err)
	}
	if store.PSchema() != prePS {
		t.Error("aborted cutover changed the installed configuration")
	}
	// The write lock must have been released: a mutation would deadlock
	// otherwise.
	if _, err := store.DeleteWhere(
		`FOR $s IN imdb/show WHERE $s/year = c1 RETURN $s`, Params{"c1": "1700"}); err != nil {
		t.Fatalf("mutation after recovered cutover panic: %v", err)
	}
	if publishString(t, store) != prePub {
		t.Error("aborted cutover corrupted the serving image")
	}
}

// TestMigrateRestartsOnConcurrentMutation injects a mutation between
// publish and cutover; the migrator must detect the stale epoch, restart
// once, and the migrated image must contain the mutation.
func TestMigrateRestartsOnConcurrentMutation(t *testing.T) {
	_, store, target := migrationFixture(t, 20)

	// The hook fires before the first group rebuild of the first attempt
	// — after the old image was published — with no store lock held.
	defer faults.EnableHook(faults.SiteMigrate, 1, func() {
		if _, err := store.InsertChild(
			`FOR $s IN imdb/show RETURN $s`, nil, `<aka>migration witness</aka>`); err != nil {
			t.Errorf("InsertChild during rebuild: %v", err)
		}
	})()
	rep, err := store.MigrateTo(target)
	if err != nil {
		t.Fatalf("MigrateTo: %v", err)
	}
	if rep.Restarts != 1 {
		t.Errorf("want exactly one restart, got %d (under lock: %v)", rep.Restarts, rep.RebuiltUnderLock)
	}
	if !strings.Contains(publishString(t, store), "migration witness") {
		t.Error("mutation applied mid-migration is missing from the migrated image")
	}
}

// TestMigrateFallsBackToLockedRebuild mutates on every rebuild attempt,
// exhausting the restart budget; the final attempt must rebuild under
// the write lock and still produce a correct image.
func TestMigrateFallsBackToLockedRebuild(t *testing.T) {
	_, store, target := migrationFixture(t, 10)

	// With one huge group the site alternates group (odd hits, no lock
	// held) and cutover (even hits, write lock held — must not touch the
	// store). Mutating on every odd hit invalidates every attempt.
	var muts int
	hits := 0
	defer faults.EnableHook(faults.SiteMigrate, -1, func() {
		hits++
		if hits%2 == 1 {
			muts++
			if _, err := store.InsertChild(
				`FOR $s IN imdb/show RETURN $s`, nil,
				fmt.Sprintf(`<aka>churn %d</aka>`, muts)); err != nil {
				t.Errorf("InsertChild during rebuild: %v", err)
			}
		}
	})()
	rep, err := store.MigrateTo(target, MigrateOptions{TablesPerGroup: 1 << 20, MaxRestarts: 2})
	if err != nil {
		t.Fatalf("MigrateTo: %v", err)
	}
	if rep.Restarts != 2 || !rep.RebuiltUnderLock {
		t.Errorf("want 2 restarts then a locked rebuild, got %+v", rep)
	}
	pub := publishString(t, store)
	for i := 1; i <= muts; i++ {
		if !strings.Contains(pub, fmt.Sprintf("churn %d", i)) {
			t.Errorf("mutation %d missing from the migrated image", i)
		}
	}
	if store.PSchema() != target.PSchema() {
		t.Error("locked rebuild did not install the target configuration")
	}
}

// TestMigrateUnderConcurrentReads runs a live migration while reader
// goroutines hammer the store with ad-hoc and prepared queries: zero
// errors allowed, and the image must be byte-identical afterwards.
// Run under -race in CI.
func TestMigrateUnderConcurrentReads(t *testing.T) {
	_, store, target := migrationFixture(t, 30)
	prePub := publishString(t, store)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)
	report := func(op string, err error) {
		select {
		case errs <- fmt.Errorf("%s: %w", op, err):
		default:
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pq, err := store.Prepare(`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title`)
			if err != nil {
				report("Prepare", err)
				return
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				year := fmt.Sprint(1990 + (g*31+i)%20)
				if _, err := pq.Run(Params{"c1": year}); err != nil {
					report("Run", err)
					return
				}
				if _, err := store.Query(
					`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/year`,
					Params{"c1": year}); err != nil {
					report("Query", err)
					return
				}
			}
		}(g)
	}

	rep, err := store.MigrateTo(target, MigrateOptions{TablesPerGroup: 2})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("MigrateTo under read load: %v", err)
	}
	select {
	case e := <-errs:
		t.Fatalf("reader failed during migration: %v", e)
	default:
	}
	if rep.Restarts != 0 {
		t.Errorf("pure read load must not invalidate the rebuild: %+v", rep)
	}
	if publishString(t, store) != prePub {
		t.Error("image not byte-identical after migration under read load")
	}
}

// TestMigrateUnderConcurrentWrites races a migration against live
// mutations and readers. Whatever path the migrator takes (restarts or
// the locked fallback), no operation may fail and every mutation applied
// before and during the migration must survive into the final image.
// Run under -race in CI.
func TestMigrateUnderConcurrentWrites(t *testing.T) {
	_, store, target := migrationFixture(t, 20)
	// Pin the writer to a year that exists in the generated document so
	// the inserts actually land.
	yr, err := store.Query(`FOR $v IN imdb/show RETURN $v/year`, nil)
	if err != nil || len(yr.Rows) == 0 {
		t.Fatalf("no shows to mutate: %v", err)
	}
	year := fmt.Sprint(yr.Rows[0][0])

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)
	report := func(op string, err error) {
		select {
		case errs <- fmt.Errorf("%s: %w", op, err):
		default:
		}
	}
	// The writer is bounded: an unbounded insert loop racing a
	// restarting migration grows the document set (and each rebuild)
	// without limit.
	const maxInserts = 50
	var inserted int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < maxInserts; i++ {
			select {
			case <-stop:
				return
			default:
			}
			n, err := store.InsertChild(
				`FOR $s IN imdb/show WHERE $s/year = c1 RETURN $s`,
				Params{"c1": year},
				fmt.Sprintf(`<aka>live %d</aka>`, i))
			if err != nil {
				report("InsertChild", err)
				return
			}
			if n > 0 {
				inserted++
			}
		}
	}()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := store.Query(
					`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title`,
					Params{"c1": fmt.Sprint(1990 + i%20)}); err != nil {
					report("Query", err)
					return
				}
			}
		}(g)
	}

	rep, err := store.MigrateTo(target, MigrateOptions{MaxRestarts: 2})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("MigrateTo under write load: %v", err)
	}
	select {
	case e := <-errs:
		t.Fatalf("operation failed during migration: %v", e)
	default:
	}
	if store.PSchema() != target.PSchema() {
		t.Error("migration under write load did not install the target")
	}
	// Every acknowledged insert — before, during, or after the cutover —
	// must be durable in the final image.
	pub := publishString(t, store)
	for i := 0; i < inserted; i++ {
		if !strings.Contains(pub, fmt.Sprintf("<aka>live %d</aka>", i)) {
			t.Errorf("acknowledged insert %d of %d missing after migration (report: %+v)", i, inserted, rep)
			break
		}
	}
	if _, err := store.Query(`FOR $v IN imdb/show RETURN $v/title`, nil); err != nil {
		t.Errorf("query after migration: %v", err)
	}
}
