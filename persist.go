package legodb

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"legodb/internal/engine"
	"legodb/internal/relational"
	"legodb/internal/xschema"
)

// Store persistence: a snapshot carries the physical schema (from which
// the catalog re-derives via the fixed mapping) and every relation's
// rows, so an advised-and-loaded store can be saved and reopened without
// re-running the search or re-shredding documents.

// storeSnapshot is the gob-encoded on-disk form.
type storeSnapshot struct {
	// SchemaText is the p-schema in algebra notation (statistics
	// annotations included).
	SchemaText string
	Tables     []tableSnapshot
}

type tableSnapshot struct {
	Name    string
	Columns []string
	Rows    []engine.Row
	NextID  int64
}

// Save writes the store (schema and all rows) to w. It takes the
// store's read lock, so a snapshot taken while queries are serving is
// consistent (mutations wait).
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := storeSnapshot{SchemaText: s.schema.String()}
	for _, name := range s.catalog.Order {
		t := s.db.Table(name)
		cols := make([]string, len(t.Def.Columns))
		for i, c := range t.Def.Columns {
			cols[i] = c.Name
		}
		// Tombstoned rows compact away in the snapshot.
		rows := make([]engine.Row, 0, t.LiveRows())
		for pos, row := range t.Rows {
			if t.Alive(pos) {
				rows = append(rows, row)
			}
		}
		snap.Tables = append(snap.Tables, tableSnapshot{
			Name:    name,
			Columns: cols,
			Rows:    rows,
			NextID:  t.PeekNextID(),
		})
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// SaveFile writes the store to a file.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenStore reads a snapshot written by Save and reconstructs the store:
// the schema is re-parsed, the catalog re-derived through the fixed
// mapping, and the rows restored with their indexes rebuilt.
func OpenStore(r io.Reader) (*Store, error) {
	var snap storeSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("legodb: read snapshot: %w", err)
	}
	ps, err := xschema.ParseSchema(snap.SchemaText)
	if err != nil {
		return nil, fmt.Errorf("legodb: snapshot schema: %w", err)
	}
	cat, err := relational.Map(ps)
	if err != nil {
		return nil, fmt.Errorf("legodb: snapshot mapping: %w", err)
	}
	store, err := openStore(ps, cat)
	if err != nil {
		return nil, err
	}
	for _, ts := range snap.Tables {
		t := store.db.Table(ts.Name)
		if t == nil {
			return nil, fmt.Errorf("legodb: snapshot table %q not in the re-derived catalog", ts.Name)
		}
		if len(ts.Columns) != len(t.Def.Columns) {
			return nil, fmt.Errorf("legodb: snapshot table %q has %d columns, catalog has %d",
				ts.Name, len(ts.Columns), len(t.Def.Columns))
		}
		for i, c := range t.Def.Columns {
			if ts.Columns[i] != c.Name {
				return nil, fmt.Errorf("legodb: snapshot table %q column %d is %q, catalog has %q",
					ts.Name, i, ts.Columns[i], c.Name)
			}
		}
		for _, row := range ts.Rows {
			if err := t.Insert(row); err != nil {
				return nil, fmt.Errorf("legodb: snapshot table %q: %w", ts.Name, err)
			}
		}
		t.SetNextID(ts.NextID)
	}
	return store, nil
}

// OpenStoreFile reads a snapshot file.
func OpenStoreFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return OpenStore(f)
}
