package legodb

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"legodb/internal/engine"
	"legodb/internal/relational"
	"legodb/internal/xschema"
)

// Store persistence: a snapshot carries the physical schema (from which
// the catalog re-derives via the fixed mapping) and every relation's
// rows, so an advised-and-loaded store can be saved and reopened without
// re-running the search or re-shredding documents.
//
// Snapshots are framed with the in-house header (the cost-cache
// snapshot idiom): magic, version, table count, payload length and a
// CRC32C of the gob payload. A truncated, bit-flipped or foreign file is
// rejected with ErrCorruptStoreSnapshot before any row is replayed, and
// OpenStoreFile quarantines such a file to path+".corrupt" so the
// evidence survives and the path is free for the next save.

// storeMagic identifies a store snapshot ("LGDBSTOR").
var storeMagic = [8]byte{'L', 'G', 'D', 'B', 'S', 'T', 'O', 'R'}

const (
	storeSnapshotVersion = 1
	storeHeaderLen       = 30
	// maxStoreSnapshotTables bounds the declared table count; a header
	// claiming more is forged (catalogs are tens of tables, not
	// millions).
	maxStoreSnapshotTables = 1 << 20
	// maxStoreSnapshotBytes bounds the payload allocation (1 GiB).
	maxStoreSnapshotBytes = 1 << 30
)

// ErrCorruptStoreSnapshot marks a snapshot OpenStore rejected before
// reconstructing anything: bad magic, wrong version, truncation, an
// implausible size, a checksum mismatch, or a payload that does not
// decode. Callers can errors.Is on it to quarantine the file.
var ErrCorruptStoreSnapshot = errors.New("legodb: corrupt store snapshot")

// storeSnapshot is the gob-encoded payload.
type storeSnapshot struct {
	// SchemaText is the p-schema in algebra notation (statistics
	// annotations included).
	SchemaText string
	Tables     []tableSnapshot
}

type tableSnapshot struct {
	Name    string
	Columns []string
	Rows    []engine.Row
	NextID  int64
}

// Save writes the store (schema and all rows) to w, framed and
// checksummed. It takes the store's read lock, so a snapshot taken while
// queries are serving is consistent (mutations wait).
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	snap := storeSnapshot{SchemaText: s.schema.String()}
	for _, name := range s.catalog.Order {
		t := s.db.Table(name)
		cols := make([]string, len(t.Def.Columns))
		for i, c := range t.Def.Columns {
			cols[i] = c.Name
		}
		// Tombstoned rows compact away in the snapshot.
		rows := make([]engine.Row, 0, t.LiveRows())
		for pos, row := range t.Rows {
			if t.Alive(pos) {
				rows = append(rows, row)
			}
		}
		snap.Tables = append(snap.Tables, tableSnapshot{
			Name:    name,
			Columns: cols,
			Rows:    rows,
			NextID:  t.PeekNextID(),
		})
	}
	s.mu.RUnlock()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&snap); err != nil {
		return fmt.Errorf("legodb: encode snapshot: %w", err)
	}
	var hdr [storeHeaderLen]byte
	copy(hdr[:8], storeMagic[:])
	binary.LittleEndian.PutUint16(hdr[8:10], storeSnapshotVersion)
	binary.LittleEndian.PutUint64(hdr[10:18], uint64(len(snap.Tables)))
	binary.LittleEndian.PutUint64(hdr[18:26], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[26:30], crc32.Checksum(payload.Bytes(), crc32.MakeTable(crc32.Castagnoli)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("legodb: write snapshot header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("legodb: write snapshot payload: %w", err)
	}
	return nil
}

// SaveFile writes the store to a file atomically (via a sibling temp
// file renamed into place).
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// OpenStore reads a snapshot written by Save and reconstructs the store:
// the frame is validated (magic, version, declared sizes, payload
// checksum — failures return ErrCorruptStoreSnapshot before anything is
// built), then the schema is re-parsed, the catalog re-derived through
// the fixed mapping, and the rows restored with their indexes rebuilt.
func OpenStore(r io.Reader) (*Store, error) {
	var hdr [storeHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorruptStoreSnapshot, err)
	}
	if !bytes.Equal(hdr[:8], storeMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptStoreSnapshot)
	}
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != storeSnapshotVersion {
		return nil, fmt.Errorf("%w: snapshot version %d, want %d", ErrCorruptStoreSnapshot, v, storeSnapshotVersion)
	}
	declared := binary.LittleEndian.Uint64(hdr[10:18])
	payloadLen := binary.LittleEndian.Uint64(hdr[18:26])
	sum := binary.LittleEndian.Uint32(hdr[26:30])
	if declared > maxStoreSnapshotTables {
		return nil, fmt.Errorf("%w: %d tables exceeds limit %d", ErrCorruptStoreSnapshot, declared, maxStoreSnapshotTables)
	}
	if payloadLen > maxStoreSnapshotBytes {
		return nil, fmt.Errorf("%w: %d payload bytes exceeds limit %d", ErrCorruptStoreSnapshot, payloadLen, maxStoreSnapshotBytes)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", ErrCorruptStoreSnapshot, err)
	}
	if got := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrCorruptStoreSnapshot, got, sum)
	}
	var snap storeSnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrCorruptStoreSnapshot, err)
	}
	if uint64(len(snap.Tables)) != declared {
		return nil, fmt.Errorf("%w: %d tables decoded, header declared %d", ErrCorruptStoreSnapshot, len(snap.Tables), declared)
	}
	ps, err := xschema.ParseSchema(snap.SchemaText)
	if err != nil {
		return nil, fmt.Errorf("legodb: snapshot schema: %w", err)
	}
	cat, err := relational.Map(ps)
	if err != nil {
		return nil, fmt.Errorf("legodb: snapshot mapping: %w", err)
	}
	store, err := openStore(ps, cat)
	if err != nil {
		return nil, err
	}
	for _, ts := range snap.Tables {
		t := store.db.Table(ts.Name)
		if t == nil {
			return nil, fmt.Errorf("legodb: snapshot table %q not in the re-derived catalog", ts.Name)
		}
		if len(ts.Columns) != len(t.Def.Columns) {
			return nil, fmt.Errorf("legodb: snapshot table %q has %d columns, catalog has %d",
				ts.Name, len(ts.Columns), len(t.Def.Columns))
		}
		for i, c := range t.Def.Columns {
			if ts.Columns[i] != c.Name {
				return nil, fmt.Errorf("legodb: snapshot table %q column %d is %q, catalog has %q",
					ts.Name, i, ts.Columns[i], c.Name)
			}
		}
		for _, row := range ts.Rows {
			if err := t.Insert(row); err != nil {
				return nil, fmt.Errorf("legodb: snapshot table %q: %w", ts.Name, err)
			}
		}
		t.SetNextID(ts.NextID)
	}
	return store, nil
}

// OpenStoreFile reads a snapshot file. A corrupt file is quarantined to
// path+".corrupt" (the returned error still reports the corruption, and
// mentions the quarantine path when the rename succeeded) so the next
// SaveFile starts clean and the evidence survives for inspection.
func OpenStoreFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	store, err := OpenStore(f)
	f.Close()
	if err != nil && errors.Is(err, ErrCorruptStoreSnapshot) {
		quarantine := path + ".corrupt"
		if renameErr := os.Rename(path, quarantine); renameErr == nil {
			return nil, fmt.Errorf("%w (quarantined to %s)", err, quarantine)
		}
	}
	return store, err
}
