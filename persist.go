package legodb

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"

	"legodb/internal/colfile"
	"legodb/internal/engine"
	"legodb/internal/fsio"
	"legodb/internal/relational"
	"legodb/internal/xschema"
)

// Store persistence: a snapshot carries the physical schema (from which
// the catalog re-derives via the fixed mapping) and every relation's
// rows, so an advised-and-loaded store can be saved and reopened without
// re-running the search or re-shredding documents.
//
// Snapshots are framed with the in-house header (the cost-cache
// snapshot idiom): magic, version, table count, payload length and a
// CRC32C of the payload. Version 2 stores each table as a colfile
// segment — the column-chunked binary format of internal/colfile — which
// reopened stores serve directly as frozen columnar bases; version 1
// (gob-encoded rows) still opens read-only for migration, and every save
// writes version 2. A truncated, bit-flipped or foreign file is rejected
// with ErrCorruptStoreSnapshot before any row is replayed, and
// OpenStoreFile quarantines such a file to path+".corrupt" so the
// evidence survives and the path is free for the next save. SaveFile is
// crash-consistent: temp file, fsync, rename, parent-directory fsync —
// a snapshot visible at the canonical path is complete and
// checksum-valid.

// storeMagic identifies a store snapshot ("LGDBSTOR").
var storeMagic = [8]byte{'L', 'G', 'D', 'B', 'S', 'T', 'O', 'R'}

const (
	// storeSnapshotVersionGob is the legacy row-oriented gob payload,
	// accepted by OpenStore but no longer written.
	storeSnapshotVersionGob = 1
	// storeSnapshotVersion is the current column-chunked payload: the
	// schema text plus one colfile segment per table.
	storeSnapshotVersion = 2
	storeHeaderLen       = 30
	// maxStoreSnapshotTables bounds the declared table count; a header
	// claiming more is forged (catalogs are tens of tables, not
	// millions).
	maxStoreSnapshotTables = 1 << 20
	// maxStoreSnapshotBytes bounds the payload allocation (1 GiB).
	maxStoreSnapshotBytes = 1 << 30
)

// ErrCorruptStoreSnapshot marks a snapshot OpenStore rejected before
// reconstructing anything: bad magic, wrong version, truncation, an
// implausible size, a checksum mismatch at the frame or inside a
// colfile segment, or a payload that does not decode. Callers can
// errors.Is on it to quarantine the file.
var ErrCorruptStoreSnapshot = errors.New("legodb: corrupt store snapshot")

// storeSnapshot is the version-1 gob-encoded payload, kept for opening
// legacy snapshots.
type storeSnapshot struct {
	// SchemaText is the p-schema in algebra notation (statistics
	// annotations included).
	SchemaText string
	Tables     []tableSnapshot
}

type tableSnapshot struct {
	Name    string
	Columns []string
	Rows    []engine.Row
	NextID  int64
}

// Save writes the store (schema and all tables as colfile segments) to
// w, framed and checksummed. It takes the store's read lock, so a
// snapshot taken while queries are serving is consistent (mutations
// wait).
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	schemaText := s.schema.String()
	segments := make([][]byte, 0, len(s.catalog.Order))
	for _, name := range s.catalog.Order {
		t := s.db.Table(name)
		cols := make([]string, len(t.Def.Columns))
		for i, c := range t.Def.Columns {
			cols[i] = c.Name
		}
		// Tombstoned rows compact away in the snapshot.
		ct := &colfile.Table{
			Name:    name,
			Columns: cols,
			Rows:    t.LiveRows(),
			NextID:  t.PeekNextID(),
			Cols:    t.SnapshotColumns(),
		}
		seg, err := colfile.Encode(ct)
		if err != nil {
			s.mu.RUnlock()
			return fmt.Errorf("legodb: encode snapshot table %s: %w", name, err)
		}
		segments = append(segments, seg)
	}
	s.mu.RUnlock()
	var payload bytes.Buffer
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(schemaText)))
	payload.Write(n[:])
	payload.WriteString(schemaText)
	for _, seg := range segments {
		binary.LittleEndian.PutUint32(n[:], uint32(len(seg)))
		payload.Write(n[:])
		payload.Write(seg)
	}
	var hdr [storeHeaderLen]byte
	copy(hdr[:8], storeMagic[:])
	binary.LittleEndian.PutUint16(hdr[8:10], storeSnapshotVersion)
	binary.LittleEndian.PutUint64(hdr[10:18], uint64(len(segments)))
	binary.LittleEndian.PutUint64(hdr[18:26], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[26:30], fsio.Checksum(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("legodb: write snapshot header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("legodb: write snapshot payload: %w", err)
	}
	return nil
}

// SaveFile writes the store to a file crash-consistently: a sibling
// temp file is written and fsynced, renamed into place, and the parent
// directory fsynced, so a crash at any instant leaves either the
// previous complete snapshot or the new one at path — never a torn
// image. The faults.SiteSnapshot failpoint (inside WriteFileAtomic)
// simulates the crash between fsync and rename.
func (s *Store) SaveFile(path string) error {
	return fsio.WriteFileAtomic(path, s.Save)
}

// OpenStore reads a snapshot written by Save and reconstructs the store:
// the frame is validated (magic, version, declared sizes, payload
// checksum — failures return ErrCorruptStoreSnapshot before anything is
// built), then the schema is re-parsed, the catalog re-derived through
// the fixed mapping, and the tables restored — version-2 colfile
// segments become frozen columnar bases with their indexes rebuilt,
// version-1 gob rows are replayed through Insert.
func OpenStore(r io.Reader) (*Store, error) {
	var hdr [storeHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorruptStoreSnapshot, err)
	}
	if !bytes.Equal(hdr[:8], storeMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptStoreSnapshot)
	}
	version := binary.LittleEndian.Uint16(hdr[8:10])
	if version != storeSnapshotVersionGob && version != storeSnapshotVersion {
		return nil, fmt.Errorf("%w: snapshot version %d, want %d or %d",
			ErrCorruptStoreSnapshot, version, storeSnapshotVersionGob, storeSnapshotVersion)
	}
	declared := binary.LittleEndian.Uint64(hdr[10:18])
	payloadLen := binary.LittleEndian.Uint64(hdr[18:26])
	sum := binary.LittleEndian.Uint32(hdr[26:30])
	if declared > maxStoreSnapshotTables {
		return nil, fmt.Errorf("%w: %d tables exceeds limit %d", ErrCorruptStoreSnapshot, declared, maxStoreSnapshotTables)
	}
	if payloadLen > maxStoreSnapshotBytes {
		return nil, fmt.Errorf("%w: %d payload bytes exceeds limit %d", ErrCorruptStoreSnapshot, payloadLen, maxStoreSnapshotBytes)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", ErrCorruptStoreSnapshot, err)
	}
	if got := fsio.Checksum(payload); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrCorruptStoreSnapshot, got, sum)
	}
	if version == storeSnapshotVersionGob {
		return openStoreV1(payload, declared)
	}
	return openStoreV2(payload, declared)
}

// openStoreV2 reconstructs a store from the column-chunked payload:
// length-prefixed schema text, then one length-prefixed colfile segment
// per table, each installed as a frozen columnar base.
func openStoreV2(payload []byte, declared uint64) (*Store, error) {
	schemaText, rest, err := takeSegment(payload, "schema")
	if err != nil {
		return nil, err
	}
	tables := make([]*colfile.Table, 0, declared)
	for len(rest) > 0 {
		var seg []byte
		seg, rest, err = takeSegment(rest, "table")
		if err != nil {
			return nil, err
		}
		ct, err := colfile.Decode(seg)
		if err != nil {
			if errors.Is(err, colfile.ErrCorrupt) {
				return nil, fmt.Errorf("%w: table segment %d: %v", ErrCorruptStoreSnapshot, len(tables), err)
			}
			return nil, err
		}
		tables = append(tables, ct)
	}
	if uint64(len(tables)) != declared {
		return nil, fmt.Errorf("%w: %d tables decoded, header declared %d", ErrCorruptStoreSnapshot, len(tables), declared)
	}
	ps, err := xschema.ParseSchema(string(schemaText))
	if err != nil {
		return nil, fmt.Errorf("legodb: snapshot schema: %w", err)
	}
	cat, err := relational.Map(ps)
	if err != nil {
		return nil, fmt.Errorf("legodb: snapshot mapping: %w", err)
	}
	store, err := openStore(ps, cat)
	if err != nil {
		return nil, err
	}
	for _, ct := range tables {
		t := store.db.Table(ct.Name)
		if t == nil {
			return nil, fmt.Errorf("legodb: snapshot table %q not in the re-derived catalog", ct.Name)
		}
		if err := matchColumns(ct.Name, ct.Columns, t); err != nil {
			return nil, err
		}
		base, err := engine.NewColumnBase(ct.Cols, float64(ct.DataBytes))
		if err != nil {
			return nil, fmt.Errorf("%w: table %q: %v", ErrCorruptStoreSnapshot, ct.Name, err)
		}
		if base.Rows() != ct.Rows {
			return nil, fmt.Errorf("%w: table %q holds %d rows, segment declared %d",
				ErrCorruptStoreSnapshot, ct.Name, base.Rows(), ct.Rows)
		}
		if err := t.SetColumnBase(base); err != nil {
			return nil, fmt.Errorf("legodb: snapshot table %q: %w", ct.Name, err)
		}
		t.SetNextID(ct.NextID)
	}
	return store, nil
}

// takeSegment splits one u32-length-prefixed segment off the payload.
func takeSegment(payload []byte, what string) (seg, rest []byte, err error) {
	if len(payload) < 4 {
		return nil, nil, fmt.Errorf("%w: truncated before %s segment", ErrCorruptStoreSnapshot, what)
	}
	n := binary.LittleEndian.Uint32(payload)
	if uint64(n) > uint64(len(payload)-4) {
		return nil, nil, fmt.Errorf("%w: %s segment of %d bytes overruns payload", ErrCorruptStoreSnapshot, what, n)
	}
	return payload[4 : 4+n], payload[4+n:], nil
}

// openStoreV1 reconstructs a store from the legacy gob payload by
// replaying rows through Insert.
func openStoreV1(payload []byte, declared uint64) (*Store, error) {
	var snap storeSnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrCorruptStoreSnapshot, err)
	}
	if uint64(len(snap.Tables)) != declared {
		return nil, fmt.Errorf("%w: %d tables decoded, header declared %d", ErrCorruptStoreSnapshot, len(snap.Tables), declared)
	}
	ps, err := xschema.ParseSchema(snap.SchemaText)
	if err != nil {
		return nil, fmt.Errorf("legodb: snapshot schema: %w", err)
	}
	cat, err := relational.Map(ps)
	if err != nil {
		return nil, fmt.Errorf("legodb: snapshot mapping: %w", err)
	}
	store, err := openStore(ps, cat)
	if err != nil {
		return nil, err
	}
	for _, ts := range snap.Tables {
		t := store.db.Table(ts.Name)
		if t == nil {
			return nil, fmt.Errorf("legodb: snapshot table %q not in the re-derived catalog", ts.Name)
		}
		if err := matchColumns(ts.Name, ts.Columns, t); err != nil {
			return nil, err
		}
		for _, row := range ts.Rows {
			if err := t.Insert(row); err != nil {
				return nil, fmt.Errorf("legodb: snapshot table %q: %w", ts.Name, err)
			}
		}
		t.SetNextID(ts.NextID)
	}
	return store, nil
}

// matchColumns checks a snapshot table's column list against the
// re-derived catalog definition.
func matchColumns(name string, cols []string, t *engine.Table) error {
	if len(cols) != len(t.Def.Columns) {
		return fmt.Errorf("legodb: snapshot table %q has %d columns, catalog has %d",
			name, len(cols), len(t.Def.Columns))
	}
	for i, c := range t.Def.Columns {
		if cols[i] != c.Name {
			return fmt.Errorf("legodb: snapshot table %q column %d is %q, catalog has %q",
				name, i, cols[i], c.Name)
		}
	}
	return nil
}

// OpenStoreFile reads a snapshot file. A corrupt file is quarantined to
// path+".corrupt" (the returned error still reports the corruption, and
// mentions the quarantine path when the rename succeeded) so the next
// SaveFile starts clean and the evidence survives for inspection.
func OpenStoreFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	store, err := OpenStore(f)
	f.Close()
	if err != nil && errors.Is(err, ErrCorruptStoreSnapshot) {
		quarantine := path + ".corrupt"
		if renameErr := os.Rename(path, quarantine); renameErr == nil {
			return nil, fmt.Errorf("%w (quarantined to %s)", err, quarantine)
		}
	}
	return store, err
}
