// Package legodb is a cost-based XML-to-relational storage mapping
// engine, reproducing "From XML Schema to Relations: A Cost-Based
// Approach to XML Storage" (Bohannon, Freire, Roy, Siméon; ICDE 2002).
//
// Given an XML Schema (in XML Query Algebra notation), data statistics
// and an XQuery workload, LegoDB searches a space of schema rewritings —
// inlining/outlining, union distribution, repetition splitting, wildcard
// materialization — mapping each rewritten physical schema to a
// relational configuration and costing the translated workload with a
// relational optimizer. The cheapest configuration found can then be
// instantiated as an in-memory relational store that shreds documents,
// answers the XQuery workload, and publishes documents back.
//
//	eng, _ := legodb.New(schemaText)
//	eng.SetStatisticsText(statsText)
//	eng.AddQuery("Q1", `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/year`, 1)
//	advice, _ := eng.Advise(legodb.AdviseOptions{})
//	fmt.Println(advice.DDL())
//	store, _ := advice.Open()
//	store.Load(doc)
//	rows, _ := store.Query(`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/year`,
//	    legodb.Params{"c1": "Fugitive, The"})
package legodb

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"legodb/internal/core"
	"legodb/internal/dtd"
	"legodb/internal/optimizer"
	"legodb/internal/pschema"
	"legodb/internal/transform"
	"legodb/internal/xmltree"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
	"legodb/internal/xsd"
	"legodb/internal/xstats"
)

// Engine holds an application description: schema, statistics and
// workload, plus a cost cache shared by every Advise call on the engine
// (so re-advising after a workload tweak, or comparing greedy and beam
// strategies, reuses the costs of configurations already seen; keys
// include workload and statistics digests, so stale hits are
// impossible).
//
// An Engine is safe for concurrent use: setters (SetStatisticsText,
// CollectStatistics, AddQuery, AddUpdate) and searches (Advise,
// AdviseContext, EvaluateFixed) may run from multiple goroutines. Each
// search snapshots the engine's description when it starts, so a setter
// racing a search never corrupts it — the search simply answers for the
// description it observed, and the next search sees the update.
type Engine struct {
	mu       sync.Mutex
	schema   *xschema.Schema
	stats    *xstats.Set
	workload *xquery.Workload
	cache    *core.CostCache
	registry *Registry
	totals   core.CacheStats // cumulative across this engine's searches
}

func engineFor(s *xschema.Schema) *Engine {
	return &Engine{schema: s, workload: &xquery.Workload{}, cache: core.NewCostCache(0)}
}

// Options configures engine construction beyond the schema text.
type Options struct {
	// Registry attaches the engine to a cross-engine cost-cache registry
	// shared by a fleet of engines; nil keeps an engine-private cache.
	Registry *Registry
}

// NewWithOptions is New with construction options (most notably
// Options.Registry for fleet-shared cost caching).
func NewWithOptions(schemaText string, opts Options) (*Engine, error) {
	e, err := New(schemaText)
	if err != nil {
		return nil, err
	}
	e.attach(opts.Registry)
	return e, nil
}

func (e *Engine) attach(r *Registry) {
	if r == nil {
		return
	}
	e.registry = r
	e.cache = r.reg.Attach()
}

// New parses an XML Schema in algebra notation and returns an engine for
// it.
func New(schemaText string) (*Engine, error) {
	s, err := xschema.ParseSchema(schemaText)
	if err != nil {
		return nil, err
	}
	return engineFor(s), nil
}

// NewFromDTD imports a Document Type Definition instead of an XML
// Schema. DTDs carry no data types, so every value is stored as a
// string — the storage-efficiency gap the paper's Section 3.1 points
// out; supplying statistics is especially important here.
func NewFromDTD(dtdText string) (*Engine, error) {
	s, err := dtd.Parse(dtdText)
	if err != nil {
		return nil, err
	}
	return engineFor(s), nil
}

// NewFromXSD imports a W3C XML Schema document (the notation of the
// paper's Appendix B), covering the subset the paper's schemas use:
// global elements and complex types, sequences/choices with occurrence
// bounds, attributes, xs:string/xs:integer simple types and xs:any
// wildcards.
func NewFromXSD(xsdText string) (*Engine, error) {
	s, err := xsd.Parse(xsdText)
	if err != nil {
		return nil, err
	}
	return engineFor(s), nil
}

// Registry shares one cost-cache family across a fleet of engines. A
// multi-tenant service holds one engine per tenant schema; near-identical
// tenants search overlapping configuration spaces, and without sharing
// each engine re-pays every costing the fleet has already performed.
// Engines attached via NewWithOptions (or created by Registry.Engine)
// evaluate through a single shared cache keyed by (schema fingerprint,
// workload digest, cost-model digest), so identical candidates hit across
// tenants and entries can never be confused between tenants that differ.
//
// A Registry is safe for concurrent use by any number of engines.
// Concurrent evaluations of the same key are deduplicated: one engine
// runs the pipeline, the others wait and adopt its cost
// (CacheStats.Dedups counts the adoptions). The capacity passed to
// NewRegistry is a global budget across the fleet with deterministic
// oldest-first eviction per shard.
type Registry struct {
	reg *core.CacheRegistry
}

// RegistryOptions tunes NewRegistry; the zero value uses the default
// capacity (64k entries).
type RegistryOptions struct {
	// Capacity bounds the shared cache to roughly this many entries
	// across all attached engines (0 = default 64k).
	Capacity int
}

// NewRegistry returns an empty registry for a fleet of engines.
func NewRegistry(opts ...RegistryOptions) *Registry {
	var o RegistryOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return &Registry{reg: core.NewCacheRegistry(o.Capacity)}
}

// Engine parses an XML Schema and returns an engine attached to the
// registry — shorthand for NewWithOptions(schemaText, Options{Registry: r}).
func (r *Registry) Engine(schemaText string) (*Engine, error) {
	return NewWithOptions(schemaText, Options{Registry: r})
}

// RegistryStats re-exports the fleet-wide registry counters: the number
// of attached engines plus the aggregated hit/miss/dedup/eviction
// counters of the shared cache.
type RegistryStats = core.RegistryStats

// Stats snapshots the registry's fleet-wide counters.
func (r *Registry) Stats() RegistryStats {
	if r == nil {
		return RegistryStats{}
	}
	return r.reg.Stats()
}

// Save writes the registry's shared cache to w in the framed snapshot
// format (magic, version, entry count, CRC): one snapshot warms a whole
// fleet.
func (r *Registry) Save(w io.Writer) error {
	if r == nil {
		return nil
	}
	return r.reg.Save(w)
}

// Load merges a snapshot written by Save (or by Engine.SaveCostCache)
// into the registry's shared cache, returning the number of entries
// added.
func (r *Registry) Load(rd io.Reader) (int, error) {
	if r == nil {
		return 0, nil
	}
	return r.reg.Load(rd)
}

// SaveSnapshotFile writes the shared cache to a snapshot file atomically
// (temp file + rename).
func (r *Registry) SaveSnapshotFile(path string) error {
	if r == nil {
		return nil
	}
	return r.reg.SaveSnapshotFile(path)
}

// LoadSnapshotFile merges a snapshot file into the shared cache with
// lenient warm-start semantics: a missing file loads nothing, a corrupt
// one is quarantined to path+".corrupt" and reported in the warning, and
// the fleet continues cold.
func (r *Registry) LoadSnapshotFile(path string) (n int, warning string, err error) {
	if r == nil {
		return 0, "", nil
	}
	return r.reg.LoadSnapshotFile(path)
}

// Schema returns the engine's schema rendered in algebra notation.
func (e *Engine) Schema() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.schema.String()
}

// Registry returns the registry the engine is attached to (nil for an
// engine with a private cache).
func (e *Engine) Registry() *Registry {
	return e.registry
}

// Ready is a cheap health probe: it reports whether the engine holds a
// parsed schema and a usable cost cache, without touching the search
// pipeline. Serving layers poll it for /healthz so an in-flight Advise
// (which snapshots the description and runs outside the mutex) never
// makes the probe block or flap.
func (e *Engine) Ready() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.schema != nil && e.cache != nil
}

// CacheStats reports the engine's cumulative cost-cache activity across
// all its searches (each Advice carries the per-search delta). For a
// registry-attached engine these are the engine's own hits, misses and
// dedups — its share of the fleet's traffic; Registry.Stats has the
// fleet-wide aggregate.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.totals
}

// SetStatisticsText parses statistics in the Appendix A notation
// (STcnt/STsize/STbase entries) and attaches them to the engine.
func (e *Engine) SetStatisticsText(text string) error {
	set, err := xstats.Parse(text)
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.stats = set
	e.mu.Unlock()
	return nil
}

// CollectStatistics derives statistics from example documents instead of
// an explicit statistics table.
func (e *Engine) CollectStatistics(docs ...*xmltree.Node) {
	set := xstats.Collect(docs...)
	e.mu.Lock()
	e.stats = set
	e.mu.Unlock()
}

// AddQuery parses an XQuery and adds it to the workload with a weight.
func (e *Engine) AddQuery(name, text string, weight float64) error {
	q, err := xquery.Parse(text)
	if err != nil {
		return err
	}
	q.Name = name
	e.mu.Lock()
	e.workload.Add(q, weight)
	e.mu.Unlock()
	return nil
}

// AddUpdate adds an update operation ("INSERT imdb/show/aka",
// "DELETE imdb/show", "MODIFY imdb/show/description") to the workload
// with a weight. Updates price against the chosen configuration too:
// inserts and deletes pay per relation written, modifies pay the width
// of the rewritten row. (An extension of the paper's future work.)
func (e *Engine) AddUpdate(name, text string, weight float64) error {
	u, err := xquery.ParseUpdate(text)
	if err != nil {
		return err
	}
	u.Name = name
	e.mu.Lock()
	e.workload.AddUpdate(u, weight)
	e.mu.Unlock()
	return nil
}

// Workload returns a copy of the engine's declared workload (the drift
// baseline an adaptation controller starts from).
func (e *Engine) Workload() *xquery.Workload {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.workload.Copy()
}

// Strategy selects a search strategy for Advise.
type Strategy = core.Strategy

// Search strategies.
const (
	// GreedySO starts fully outlined and inlines greedily.
	GreedySO = core.GreedySO
	// GreedySI starts fully inlined and outlines greedily.
	GreedySI = core.GreedySI
	// GreedyFull searches with the complete rewriting repertoire.
	GreedyFull = core.GreedyFull
)

// AdviseOptions tunes the search; the zero value runs greedy-so over the
// inline/outline moves, as in the paper's prototype.
type AdviseOptions struct {
	Strategy Strategy
	// Threshold stops early when an iteration improves the cost by less
	// than this fraction.
	Threshold float64
	// MaxIterations bounds the greedy loop (0 = until convergence).
	MaxIterations int
	// WildcardLabels lists element names worth materializing out of
	// wildcards, with their estimated instance fractions.
	WildcardLabels map[string]float64
	// Documents is the number of documents that will be stored
	// (default 1).
	Documents float64
	// BeamWidth switches the search from the paper's greedy loop to a
	// beam search keeping this many configurations per level (0 or 1 =
	// greedy). An extension of the paper's future work on richer search
	// strategies.
	BeamWidth int
	// Workers bounds the goroutines costing candidate configurations per
	// iteration (0 = GOMAXPROCS, 1 = sequential); the chosen
	// configuration is the same either way.
	Workers int
	// Timeout bounds the search's wall-clock time (0 = none). On expiry
	// the search stops and returns the best configuration found so far
	// (Advice.Report().Stop == StopDeadline) — an anytime result, not an
	// error. A tighter deadline on the AdviseContext context also counts.
	Timeout time.Duration
	// MaxEvaluations bounds the number of candidate configurations
	// costed (0 = unbounded); exhausting it is likewise an anytime stop
	// (StopBudget).
	MaxEvaluations int
	// DisableCache turns off the engine-wide cost memoization for this
	// call (every candidate pays a full evaluator pipeline run).
	DisableCache bool
	// DisableIncremental turns off the incremental evaluation layers
	// (delta re-mapping, per-query cost reuse, catalog caching); the
	// chosen configuration and its cost are identical either way.
	DisableIncremental bool
}

// Advice is the outcome of a search: the chosen configuration and the
// search trace.
type Advice struct {
	result *core.Result
	stats  *xstats.Set
}

// Advise searches for an efficient storage configuration for the
// engine's schema, statistics and workload. It is AdviseContext with a
// background context.
func (e *Engine) Advise(opts AdviseOptions) (*Advice, error) {
	return e.AdviseContext(context.Background(), opts)
}

// AdviseContext is Advise under a caller-controlled context: cancelling
// ctx (or exceeding its deadline, or AdviseOptions.Timeout) stops the
// search anytime-style — the best configuration found so far is
// returned, with Advice.Report() saying why the search stopped. An
// error is returned only when no configuration was costed at all.
func (e *Engine) AdviseContext(ctx context.Context, opts AdviseOptions) (*Advice, error) {
	e.mu.Lock()
	w := e.workload.Copy()
	e.mu.Unlock()
	return e.AdviseWorkload(ctx, w, opts)
}

// AdviseWorkload is AdviseContext against a supplied workload instead of
// the engine's declared one — the adaptation loop's re-advising seam: a
// store's observed workload is searched with the engine's schema,
// statistics and shared cost cache, without disturbing the declared
// workload. Cache keys include the workload digest, so costings for
// different workloads never cross-hit.
func (e *Engine) AdviseWorkload(ctx context.Context, w *xquery.Workload, opts AdviseOptions) (*Advice, error) {
	// Snapshot the description so setters racing this search cannot
	// corrupt it mid-flight: the workload slices are copied (the parsed
	// queries inside are immutable), and schema/stats pointers are only
	// ever replaced wholesale by setters, never mutated in place.
	e.mu.Lock()
	schema, stats, cache := e.schema, e.stats, e.cache
	e.mu.Unlock()
	workload := w.Copy()
	if len(workload.Entries) == 0 && len(workload.Updates) == 0 {
		return nil, fmt.Errorf("legodb: add at least one workload query before Advise")
	}
	copts := core.Options{
		Strategy:       opts.Strategy,
		Threshold:      opts.Threshold,
		MaxIterations:  opts.MaxIterations,
		WildcardLabels: opts.WildcardLabels,
		RootCount:      opts.Documents,
		Workers:        opts.Workers,
		Deadline:       opts.Timeout,
		Budget:         opts.MaxEvaluations,
		DisableCache:   opts.DisableCache,

		DisableIncremental: opts.DisableIncremental,
	}
	if !opts.DisableCache {
		copts.Cache = cache
	}
	var res *core.Result
	var err error
	if opts.BeamWidth > 1 {
		res, err = core.BeamSearch(ctx, schema, workload, stats, core.BeamOptions{
			Options: copts, Width: opts.BeamWidth,
		})
	} else {
		res, err = core.GreedySearch(ctx, schema, workload, stats, copts)
	}
	if err != nil {
		return nil, fmt.Errorf("legodb: advise: %w", err)
	}
	e.mu.Lock()
	e.totals.Accumulate(res.Cache)
	e.mu.Unlock()
	return &Advice{result: res, stats: stats}, nil
}

// SaveCostCache writes the engine's cost-cache contents to w so a later
// process can warm up from them (see Engine.LoadCostCache). The format
// contains only digests and costs — no schema or query text.
func (e *Engine) SaveCostCache(w io.Writer) error {
	return e.snapshotCache().Save(w)
}

// snapshotCache reads the engine's cache pointer under the mutex (the
// pointer changes only when an engine attaches to a registry, but the
// contract says any method may race any other).
func (e *Engine) snapshotCache() *core.CostCache {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cache
}

// LoadCostCache merges a snapshot written by SaveCostCache into the
// engine's cost cache and returns the number of entries added. Entries
// only ever match when schema, workload, root count and cost model all
// digest identically, so loading a stale or foreign snapshot is safe —
// it just never hits.
func (e *Engine) LoadCostCache(r io.Reader) (int, error) {
	return e.snapshotCache().Load(r)
}

// SaveCostCacheFile writes the engine's cost cache to a snapshot file
// atomically (temp file + rename).
func (e *Engine) SaveCostCacheFile(path string) error {
	return e.snapshotCache().SaveSnapshotFile(path)
}

// LoadCostCacheFile merges a snapshot file into the engine's cost cache
// with lenient semantics: a missing file loads nothing, and a corrupt
// file (truncated, bit-flipped, wrong version) is quarantined to
// path+".corrupt" and reported in the returned warning — the engine
// continues with a cold cache instead of failing the run.
func (e *Engine) LoadCostCacheFile(path string) (n int, warning string, err error) {
	return e.snapshotCache().LoadSnapshotFile(path)
}

// EvaluateFixed costs a fixed named configuration ("all-inlined" or
// "all-outlined") without searching; useful as a baseline. The optional
// AdviseOptions carries the knobs that change a fixed costing —
// Documents (the stored document count, default 1) and DisableCache —
// so a baseline is priced under the same assumptions as the search it
// is compared against.
func (e *Engine) EvaluateFixed(config string, opts ...AdviseOptions) (*Advice, error) {
	var o AdviseOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	e.mu.Lock()
	schema, stats, workload, cache := e.schema, e.stats, e.workload.Copy(), e.cache
	e.mu.Unlock()
	annotated := schema.Clone()
	if stats != nil {
		if err := xstats.Annotate(annotated, stats); err != nil {
			return nil, err
		}
	}
	var ps *xschema.Schema
	var err error
	switch config {
	case "all-inlined":
		ps, err = pschema.AllInlined(annotated)
	case "all-outlined":
		ps, err = pschema.InitialOutlined(annotated)
	default:
		return nil, fmt.Errorf("legodb: unknown fixed configuration %q", config)
	}
	if err != nil {
		return nil, err
	}
	documents := o.Documents
	if documents == 0 {
		documents = 1
	}
	if o.DisableCache {
		cache = nil
	}
	// Evaluate through the engine cache: a later Advise revisiting this
	// fixed configuration (or a repeated baseline evaluation) costs it
	// for free. Documents is part of the workload digest, so baselines
	// priced for different corpus sizes never cross-hit.
	cacheStart := cache.Stats()
	eval := &core.Evaluator{Workload: workload, RootCount: documents, Cache: cache}
	cfg, _, err := eval.EvaluateCached(context.Background(), ps)
	if err != nil {
		return nil, err
	}
	if cfg, err = eval.Materialize(context.Background(), cfg); err != nil {
		return nil, err
	}
	res := &core.Result{Best: cfg, InitialCost: cfg.Cost, Evals: eval.Evals()}
	res.Cache = cache.Stats().Sub(cacheStart)
	e.mu.Lock()
	e.totals.Accumulate(res.Cache)
	e.mu.Unlock()
	return &Advice{result: res, stats: stats}, nil
}

// Cost is the estimated workload cost of the chosen configuration.
func (a *Advice) Cost() float64 { return a.result.Best.Cost }

// InitialCost is the cost of the search's starting configuration.
func (a *Advice) InitialCost() float64 { return a.result.InitialCost }

// PSchema renders the chosen physical schema in algebra notation.
func (a *Advice) PSchema() string { return a.result.Best.Schema.String() }

// DDL renders the chosen relational configuration as CREATE TABLE
// statements.
func (a *Advice) DDL() string { return a.result.Best.Catalog.SQL() }

// SQL renders the translated workload queries for the chosen
// configuration.
func (a *Advice) SQL() string {
	out := ""
	for _, q := range a.result.Best.Queries {
		out += q.String() + ";\n\n"
	}
	return out
}

// Trace returns the per-iteration costs of the greedy search, starting
// with the initial configuration's cost.
func (a *Advice) Trace() []float64 {
	out := []float64{a.result.InitialCost}
	for _, it := range a.result.Trace {
		out = append(out, it.Cost)
	}
	return out
}

// Explain summarizes the search: iterations, moves, costs and — when
// the search was interrupted or recovered from failures — how it
// degraded.
func (a *Advice) Explain() string {
	out := fmt.Sprintf("initial cost: %.1f\n", a.result.InitialCost)
	for i, it := range a.result.Trace {
		out += fmt.Sprintf("iteration %d: %-40s cost %.1f\n", i+1, it.Applied, it.Cost)
	}
	out += fmt.Sprintf("final cost: %.1f\n", a.result.Best.Cost)
	if st := a.result.Cache; st.Hits+st.Misses > 0 {
		out += fmt.Sprintf("cost cache: %d hits, %d misses, %d full evaluations\n",
			st.Hits, st.Misses, a.result.Evals)
	}
	if rep := a.result.Report; rep.Stop.Interrupted() || rep.Failed > 0 {
		out += fmt.Sprintf("stopped: %s (%d candidates evaluated, %d skipped, %d failed)\n",
			rep.Stop, rep.Evaluated, rep.Skipped, rep.Failed)
	}
	return out
}

// Report describes how the search ran and why it stopped: the stop
// reason (converged, threshold, deadline, cancelled, budget, …),
// candidates evaluated/skipped, and any candidate evaluations the
// search isolated and recovered from (errors, panics, memo fallbacks).
func (a *Advice) Report() SearchReport { return a.result.Report }

// CacheStats reports the cost-cache activity of this search: how many
// candidate costings were answered from the engine's memoization layer
// versus paid a full evaluator pipeline run.
func (a *Advice) CacheStats() CacheStats { return a.result.Cache }

// EvaluatorCalls is the number of full cost-evaluation pipeline runs
// (relational mapping + workload translation + optimizer costing) the
// search performed.
func (a *Advice) EvaluatorCalls() uint64 { return a.result.Evals }

// Translations is the number of query (or update) translate+cost runs
// the search performed; with incremental evaluation on, workload slots
// whose dependencies a move left untouched are served from the
// per-query cost cache instead.
func (a *Advice) Translations() uint64 { return a.result.Translations }

// QueryCacheStats reports the per-query cost-cache activity of this
// search (hits avoided a translate+cost run for one workload slot).
func (a *Advice) QueryCacheStats() (hits, misses uint64) {
	return a.result.QueryCacheHits, a.result.QueryCacheMisses
}

// TransformKind re-exports the rewriting families for advanced use.
type TransformKind = transform.Kind

// CostModel re-exports the optimizer's cost model constants.
type CostModel = optimizer.CostModel

// CacheStats re-exports the cost-cache counters (hits, misses,
// evictions, entries).
type CacheStats = core.CacheStats

// SearchReport re-exports the per-search robustness report (stop
// reason, candidates evaluated/skipped/failed, recovered errors).
type SearchReport = core.SearchReport

// StopReason re-exports why a search stopped.
type StopReason = core.StopReason

// CandidateError re-exports one isolated candidate failure.
type CandidateError = core.CandidateError

// Stop reasons (see core.StopReason).
const (
	StopConverged     = core.StopConverged
	StopThreshold     = core.StopThreshold
	StopMaxIterations = core.StopMaxIterations
	StopMaxLevels     = core.StopMaxLevels
	StopDeadline      = core.StopDeadline
	StopCancelled     = core.StopCancelled
	StopBudget        = core.StopBudget
)
