// Package legodb is a cost-based XML-to-relational storage mapping
// engine, reproducing "From XML Schema to Relations: A Cost-Based
// Approach to XML Storage" (Bohannon, Freire, Roy, Siméon; ICDE 2002).
//
// Given an XML Schema (in XML Query Algebra notation), data statistics
// and an XQuery workload, LegoDB searches a space of schema rewritings —
// inlining/outlining, union distribution, repetition splitting, wildcard
// materialization — mapping each rewritten physical schema to a
// relational configuration and costing the translated workload with a
// relational optimizer. The cheapest configuration found can then be
// instantiated as an in-memory relational store that shreds documents,
// answers the XQuery workload, and publishes documents back.
//
//	eng, _ := legodb.New(schemaText)
//	eng.SetStatisticsText(statsText)
//	eng.AddQuery("Q1", `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/year`, 1)
//	advice, _ := eng.Advise(legodb.AdviseOptions{})
//	fmt.Println(advice.DDL())
//	store, _ := advice.Open()
//	store.Load(doc)
//	rows, _ := store.Query(`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/year`,
//	    legodb.Params{"c1": "Fugitive, The"})
package legodb

import (
	"context"
	"fmt"
	"io"
	"time"

	"legodb/internal/core"
	"legodb/internal/dtd"
	"legodb/internal/optimizer"
	"legodb/internal/pschema"
	"legodb/internal/transform"
	"legodb/internal/xmltree"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
	"legodb/internal/xsd"
	"legodb/internal/xstats"
)

// Engine holds an application description: schema, statistics and
// workload, plus a cost cache shared by every Advise call on the engine
// (so re-advising after a workload tweak, or comparing greedy and beam
// strategies, reuses the costs of configurations already seen; keys
// include workload and statistics digests, so stale hits are
// impossible).
type Engine struct {
	schema   *xschema.Schema
	stats    *xstats.Set
	workload *xquery.Workload
	cache    *core.CostCache
}

func engineFor(s *xschema.Schema) *Engine {
	return &Engine{schema: s, workload: &xquery.Workload{}, cache: core.NewCostCache(0)}
}

// New parses an XML Schema in algebra notation and returns an engine for
// it.
func New(schemaText string) (*Engine, error) {
	s, err := xschema.ParseSchema(schemaText)
	if err != nil {
		return nil, err
	}
	return engineFor(s), nil
}

// NewFromDTD imports a Document Type Definition instead of an XML
// Schema. DTDs carry no data types, so every value is stored as a
// string — the storage-efficiency gap the paper's Section 3.1 points
// out; supplying statistics is especially important here.
func NewFromDTD(dtdText string) (*Engine, error) {
	s, err := dtd.Parse(dtdText)
	if err != nil {
		return nil, err
	}
	return engineFor(s), nil
}

// NewFromXSD imports a W3C XML Schema document (the notation of the
// paper's Appendix B), covering the subset the paper's schemas use:
// global elements and complex types, sequences/choices with occurrence
// bounds, attributes, xs:string/xs:integer simple types and xs:any
// wildcards.
func NewFromXSD(xsdText string) (*Engine, error) {
	s, err := xsd.Parse(xsdText)
	if err != nil {
		return nil, err
	}
	return engineFor(s), nil
}

// Schema returns the engine's schema rendered in algebra notation.
func (e *Engine) Schema() string { return e.schema.String() }

// SetStatisticsText parses statistics in the Appendix A notation
// (STcnt/STsize/STbase entries) and attaches them to the engine.
func (e *Engine) SetStatisticsText(text string) error {
	set, err := xstats.Parse(text)
	if err != nil {
		return err
	}
	e.stats = set
	return nil
}

// CollectStatistics derives statistics from example documents instead of
// an explicit statistics table.
func (e *Engine) CollectStatistics(docs ...*xmltree.Node) {
	e.stats = xstats.Collect(docs...)
}

// AddQuery parses an XQuery and adds it to the workload with a weight.
func (e *Engine) AddQuery(name, text string, weight float64) error {
	q, err := xquery.Parse(text)
	if err != nil {
		return err
	}
	q.Name = name
	e.workload.Add(q, weight)
	return nil
}

// AddUpdate adds an update operation ("INSERT imdb/show/aka",
// "DELETE imdb/show", "MODIFY imdb/show/description") to the workload
// with a weight. Updates price against the chosen configuration too:
// inserts and deletes pay per relation written, modifies pay the width
// of the rewritten row. (An extension of the paper's future work.)
func (e *Engine) AddUpdate(name, text string, weight float64) error {
	u, err := xquery.ParseUpdate(text)
	if err != nil {
		return err
	}
	u.Name = name
	e.workload.AddUpdate(u, weight)
	return nil
}

// Strategy selects a search strategy for Advise.
type Strategy = core.Strategy

// Search strategies.
const (
	// GreedySO starts fully outlined and inlines greedily.
	GreedySO = core.GreedySO
	// GreedySI starts fully inlined and outlines greedily.
	GreedySI = core.GreedySI
	// GreedyFull searches with the complete rewriting repertoire.
	GreedyFull = core.GreedyFull
)

// AdviseOptions tunes the search; the zero value runs greedy-so over the
// inline/outline moves, as in the paper's prototype.
type AdviseOptions struct {
	Strategy Strategy
	// Threshold stops early when an iteration improves the cost by less
	// than this fraction.
	Threshold float64
	// MaxIterations bounds the greedy loop (0 = until convergence).
	MaxIterations int
	// WildcardLabels lists element names worth materializing out of
	// wildcards, with their estimated instance fractions.
	WildcardLabels map[string]float64
	// Documents is the number of documents that will be stored
	// (default 1).
	Documents float64
	// BeamWidth switches the search from the paper's greedy loop to a
	// beam search keeping this many configurations per level (0 or 1 =
	// greedy). An extension of the paper's future work on richer search
	// strategies.
	BeamWidth int
	// Workers bounds the goroutines costing candidate configurations per
	// iteration (0 = GOMAXPROCS, 1 = sequential); the chosen
	// configuration is the same either way.
	Workers int
	// Timeout bounds the search's wall-clock time (0 = none). On expiry
	// the search stops and returns the best configuration found so far
	// (Advice.Report().Stop == StopDeadline) — an anytime result, not an
	// error. A tighter deadline on the AdviseContext context also counts.
	Timeout time.Duration
	// MaxEvaluations bounds the number of candidate configurations
	// costed (0 = unbounded); exhausting it is likewise an anytime stop
	// (StopBudget).
	MaxEvaluations int
	// DisableCache turns off the engine-wide cost memoization for this
	// call (every candidate pays a full evaluator pipeline run).
	DisableCache bool
	// DisableIncremental turns off the incremental evaluation layers
	// (delta re-mapping, per-query cost reuse, catalog caching); the
	// chosen configuration and its cost are identical either way.
	DisableIncremental bool
}

// Advice is the outcome of a search: the chosen configuration and the
// search trace.
type Advice struct {
	result *core.Result
	stats  *xstats.Set
}

// Advise searches for an efficient storage configuration for the
// engine's schema, statistics and workload. It is AdviseContext with a
// background context.
func (e *Engine) Advise(opts AdviseOptions) (*Advice, error) {
	return e.AdviseContext(context.Background(), opts)
}

// AdviseContext is Advise under a caller-controlled context: cancelling
// ctx (or exceeding its deadline, or AdviseOptions.Timeout) stops the
// search anytime-style — the best configuration found so far is
// returned, with Advice.Report() saying why the search stopped. An
// error is returned only when no configuration was costed at all.
func (e *Engine) AdviseContext(ctx context.Context, opts AdviseOptions) (*Advice, error) {
	if len(e.workload.Entries) == 0 && len(e.workload.Updates) == 0 {
		return nil, fmt.Errorf("legodb: add at least one workload query before Advise")
	}
	copts := core.Options{
		Strategy:       opts.Strategy,
		Threshold:      opts.Threshold,
		MaxIterations:  opts.MaxIterations,
		WildcardLabels: opts.WildcardLabels,
		RootCount:      opts.Documents,
		Workers:        opts.Workers,
		Deadline:       opts.Timeout,
		Budget:         opts.MaxEvaluations,
		DisableCache:   opts.DisableCache,

		DisableIncremental: opts.DisableIncremental,
	}
	if !opts.DisableCache {
		copts.Cache = e.cache
	}
	var res *core.Result
	var err error
	if opts.BeamWidth > 1 {
		res, err = core.BeamSearch(ctx, e.schema, e.workload, e.stats, core.BeamOptions{
			Options: copts, Width: opts.BeamWidth,
		})
	} else {
		res, err = core.GreedySearch(ctx, e.schema, e.workload, e.stats, copts)
	}
	if err != nil {
		return nil, fmt.Errorf("legodb: advise: %w", err)
	}
	return &Advice{result: res, stats: e.stats}, nil
}

// SaveCostCache writes the engine's cost-cache contents to w so a later
// process can warm up from them (see Engine.LoadCostCache). The format
// contains only digests and costs — no schema or query text.
func (e *Engine) SaveCostCache(w io.Writer) error {
	return e.cache.Save(w)
}

// LoadCostCache merges a snapshot written by SaveCostCache into the
// engine's cost cache and returns the number of entries added. Entries
// only ever match when schema, workload, root count and cost model all
// digest identically, so loading a stale or foreign snapshot is safe —
// it just never hits.
func (e *Engine) LoadCostCache(r io.Reader) (int, error) {
	return e.cache.Load(r)
}

// SaveCostCacheFile writes the engine's cost cache to a snapshot file
// atomically (temp file + rename).
func (e *Engine) SaveCostCacheFile(path string) error {
	return e.cache.SaveSnapshotFile(path)
}

// LoadCostCacheFile merges a snapshot file into the engine's cost cache
// with lenient semantics: a missing file loads nothing, and a corrupt
// file (truncated, bit-flipped, wrong version) is quarantined to
// path+".corrupt" and reported in the returned warning — the engine
// continues with a cold cache instead of failing the run.
func (e *Engine) LoadCostCacheFile(path string) (n int, warning string, err error) {
	return e.cache.LoadSnapshotFile(path)
}

// EvaluateFixed costs a fixed named configuration ("all-inlined" or
// "all-outlined") without searching; useful as a baseline.
func (e *Engine) EvaluateFixed(config string) (*Advice, error) {
	annotated := e.schema.Clone()
	if e.stats != nil {
		if err := xstats.Annotate(annotated, e.stats); err != nil {
			return nil, err
		}
	}
	var ps *xschema.Schema
	var err error
	switch config {
	case "all-inlined":
		ps, err = pschema.AllInlined(annotated)
	case "all-outlined":
		ps, err = pschema.InitialOutlined(annotated)
	default:
		return nil, fmt.Errorf("legodb: unknown fixed configuration %q", config)
	}
	if err != nil {
		return nil, err
	}
	// Evaluate through the engine cache: a later Advise revisiting this
	// fixed configuration (or a repeated baseline evaluation) costs it
	// for free.
	eval := &core.Evaluator{Workload: e.workload, RootCount: 1, Cache: e.cache}
	cfg, _, err := eval.EvaluateCached(context.Background(), ps)
	if err != nil {
		return nil, err
	}
	if cfg, err = eval.Materialize(context.Background(), cfg); err != nil {
		return nil, err
	}
	return &Advice{result: &core.Result{Best: cfg, InitialCost: cfg.Cost}}, nil
}

// Cost is the estimated workload cost of the chosen configuration.
func (a *Advice) Cost() float64 { return a.result.Best.Cost }

// InitialCost is the cost of the search's starting configuration.
func (a *Advice) InitialCost() float64 { return a.result.InitialCost }

// PSchema renders the chosen physical schema in algebra notation.
func (a *Advice) PSchema() string { return a.result.Best.Schema.String() }

// DDL renders the chosen relational configuration as CREATE TABLE
// statements.
func (a *Advice) DDL() string { return a.result.Best.Catalog.SQL() }

// SQL renders the translated workload queries for the chosen
// configuration.
func (a *Advice) SQL() string {
	out := ""
	for _, q := range a.result.Best.Queries {
		out += q.String() + ";\n\n"
	}
	return out
}

// Trace returns the per-iteration costs of the greedy search, starting
// with the initial configuration's cost.
func (a *Advice) Trace() []float64 {
	out := []float64{a.result.InitialCost}
	for _, it := range a.result.Trace {
		out = append(out, it.Cost)
	}
	return out
}

// Explain summarizes the search: iterations, moves, costs and — when
// the search was interrupted or recovered from failures — how it
// degraded.
func (a *Advice) Explain() string {
	out := fmt.Sprintf("initial cost: %.1f\n", a.result.InitialCost)
	for i, it := range a.result.Trace {
		out += fmt.Sprintf("iteration %d: %-40s cost %.1f\n", i+1, it.Applied, it.Cost)
	}
	out += fmt.Sprintf("final cost: %.1f\n", a.result.Best.Cost)
	if st := a.result.Cache; st.Hits+st.Misses > 0 {
		out += fmt.Sprintf("cost cache: %d hits, %d misses, %d full evaluations\n",
			st.Hits, st.Misses, a.result.Evals)
	}
	if rep := a.result.Report; rep.Stop.Interrupted() || rep.Failed > 0 {
		out += fmt.Sprintf("stopped: %s (%d candidates evaluated, %d skipped, %d failed)\n",
			rep.Stop, rep.Evaluated, rep.Skipped, rep.Failed)
	}
	return out
}

// Report describes how the search ran and why it stopped: the stop
// reason (converged, threshold, deadline, cancelled, budget, …),
// candidates evaluated/skipped, and any candidate evaluations the
// search isolated and recovered from (errors, panics, memo fallbacks).
func (a *Advice) Report() SearchReport { return a.result.Report }

// CacheStats reports the cost-cache activity of this search: how many
// candidate costings were answered from the engine's memoization layer
// versus paid a full evaluator pipeline run.
func (a *Advice) CacheStats() CacheStats { return a.result.Cache }

// EvaluatorCalls is the number of full cost-evaluation pipeline runs
// (relational mapping + workload translation + optimizer costing) the
// search performed.
func (a *Advice) EvaluatorCalls() uint64 { return a.result.Evals }

// Translations is the number of query (or update) translate+cost runs
// the search performed; with incremental evaluation on, workload slots
// whose dependencies a move left untouched are served from the
// per-query cost cache instead.
func (a *Advice) Translations() uint64 { return a.result.Translations }

// QueryCacheStats reports the per-query cost-cache activity of this
// search (hits avoided a translate+cost run for one workload slot).
func (a *Advice) QueryCacheStats() (hits, misses uint64) {
	return a.result.QueryCacheHits, a.result.QueryCacheMisses
}

// TransformKind re-exports the rewriting families for advanced use.
type TransformKind = transform.Kind

// CostModel re-exports the optimizer's cost model constants.
type CostModel = optimizer.CostModel

// CacheStats re-exports the cost-cache counters (hits, misses,
// evictions, entries).
type CacheStats = core.CacheStats

// SearchReport re-exports the per-search robustness report (stop
// reason, candidates evaluated/skipped/failed, recovered errors).
type SearchReport = core.SearchReport

// StopReason re-exports why a search stopped.
type StopReason = core.StopReason

// CandidateError re-exports one isolated candidate failure.
type CandidateError = core.CandidateError

// Stop reasons (see core.StopReason).
const (
	StopConverged     = core.StopConverged
	StopThreshold     = core.StopThreshold
	StopMaxIterations = core.StopMaxIterations
	StopMaxLevels     = core.StopMaxLevels
	StopDeadline      = core.StopDeadline
	StopCancelled     = core.StopCancelled
	StopBudget        = core.StopBudget
)
