package legodb

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"legodb/internal/faults"
	"legodb/internal/fsio"
	"legodb/internal/imdb"
	"legodb/internal/xmltree"
)

func advisedStore(t *testing.T) (*Store, *xmltree.Node) {
	t.Helper()
	eng, err := New(imdb.SchemaText)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetStatisticsText(imdb.Stats().String()); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddQuery("q", `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`, 1); err != nil {
		t.Fatal(err)
	}
	advice, err := eng.Advise(AdviseOptions{Strategy: GreedySI, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	store, err := advice.Open()
	if err != nil {
		t.Fatal(err)
	}
	doc := imdb.Generate(imdb.GenOptions{Shows: 40, Seed: 13})
	if err := store.Load(doc); err != nil {
		t.Fatal(err)
	}
	return store, doc
}

func TestSaveAndOpenStore(t *testing.T) {
	store, doc := advisedStore(t)
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := OpenStore(&buf)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	// Row counts survive.
	for _, name := range store.Tables() {
		if got, want := restored.TableRows(name), store.TableRows(name); got != want {
			t.Errorf("table %s: %d rows restored, want %d", name, got, want)
		}
	}
	// Queries answer identically.
	title := doc.Path("show", "title")[0].Text
	q := `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`
	orig, err := store.Query(q, Params{"c1": title})
	if err != nil {
		t.Fatal(err)
	}
	back, err := restored.Query(q, Params{"c1": title})
	if err != nil {
		t.Fatal(err)
	}
	if len(orig.Rows) == 0 || len(orig.Rows) != len(back.Rows) {
		t.Fatalf("rows: %d vs %d", len(orig.Rows), len(back.Rows))
	}
	// Publishing still round-trips.
	docs, err := restored.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualCanonical(doc, docs[0]) {
		t.Fatal("restored store publishes a different document")
	}
	// Inserts after restore continue the id sequence without collision.
	extra := imdb.Generate(imdb.GenOptions{Shows: 3, Seed: 99})
	if err := restored.Load(extra); err != nil {
		t.Fatalf("Load after restore: %v", err)
	}
	docs, err = restored.Publish()
	if err != nil {
		t.Fatalf("Publish after post-restore load: %v", err)
	}
	if len(docs) != 2 {
		t.Fatalf("documents after second load = %d", len(docs))
	}
}

func TestSaveFileRoundTrip(t *testing.T) {
	store, _ := advisedStore(t)
	path := filepath.Join(t.TempDir(), "store.legodb")
	if err := store.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	restored, err := OpenStoreFile(path)
	if err != nil {
		t.Fatalf("OpenStoreFile: %v", err)
	}
	if restored.DDL() != store.DDL() {
		t.Fatal("DDL changed across the file round trip")
	}
}

func TestOpenStoreRejectsGarbage(t *testing.T) {
	if _, err := OpenStore(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if _, err := OpenStoreFile("/nonexistent/path"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestSnapshotFrameValidation corrupts a valid snapshot every way the
// header can catch — magic, version, truncation, payload bit-flip — and
// demands ErrCorruptStoreSnapshot before any reconstruction starts.
func TestSnapshotFrameValidation(t *testing.T) {
	store, _ := advisedStore(t)
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(name string, mutate func(b []byte) []byte) {
		t.Helper()
		b := append([]byte(nil), good...)
		b = mutate(b)
		_, err := OpenStore(bytes.NewReader(b))
		if !errors.Is(err, ErrCorruptStoreSnapshot) {
			t.Errorf("%s: want ErrCorruptStoreSnapshot, got %v", name, err)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	corrupt("bad version", func(b []byte) []byte { b[8] = 0x7f; return b })
	corrupt("truncated header", func(b []byte) []byte { return b[:storeHeaderLen-3] })
	corrupt("truncated payload", func(b []byte) []byte { return b[:len(b)-5] })
	corrupt("payload bit-flip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })
	corrupt("forged table count", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[10:18], 1<<40)
		return b
	})
	corrupt("forged payload length", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[18:26], uint64(maxStoreSnapshotBytes)+1)
		return b
	})

	// The pristine bytes still open.
	if _, err := OpenStore(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

// TestOpenStoreFileQuarantinesCorrupt is the regression test for the
// quarantine path: a corrupt snapshot file is moved aside to
// path+".corrupt" and the error names both the corruption and the
// quarantine location.
func TestOpenStoreFileQuarantinesCorrupt(t *testing.T) {
	store, _ := advisedStore(t)
	path := filepath.Join(t.TempDir(), "store.legodb")
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = OpenStoreFile(path)
	if !errors.Is(err, ErrCorruptStoreSnapshot) {
		t.Fatalf("want ErrCorruptStoreSnapshot, got %v", err)
	}
	if !strings.Contains(err.Error(), ".corrupt") {
		t.Errorf("error does not mention the quarantine: %v", err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Error("corrupt file still occupies the snapshot path")
	}
	if _, statErr := os.Stat(path + ".corrupt"); statErr != nil {
		t.Errorf("quarantined file missing: %v", statErr)
	}
	// The freed path accepts the next save, which then opens cleanly.
	if err := store.SaveFile(path); err != nil {
		t.Fatalf("SaveFile after quarantine: %v", err)
	}
	if _, err := OpenStoreFile(path); err != nil {
		t.Fatalf("reopen after quarantine: %v", err)
	}
}

// TestSaveRacesServing snapshots a store while queries and mutations
// hammer it (run under -race in CI): every snapshot must be internally
// consistent — it reopens cleanly and publishes valid documents.
func TestSaveRacesServing(t *testing.T) {
	store, _ := advisedStore(t)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan error, 16)
	report := func(op string, err error) {
		select {
		case fail <- fmt.Errorf("%s: %w", op, err):
		default:
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := store.Query(
				`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title`,
				Params{"c1": fmt.Sprint(1990 + i%20)}); err != nil {
				report("Query", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := store.InsertChild(
				`FOR $s IN imdb/show RETURN $s`, nil,
				fmt.Sprintf(`<aka>save race %d</aka>`, i)); err != nil {
				report("InsertChild", err)
				return
			}
		}
	}()

	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if err := store.Save(&buf); err != nil {
			t.Fatalf("Save %d under load: %v", i, err)
		}
		restored, err := OpenStore(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("snapshot %d taken under load does not reopen: %v", i, err)
		}
		if _, err := restored.Publish(); err != nil {
			t.Fatalf("snapshot %d does not publish: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
}

// TestSaveFileCrashBeforeRename is the acceptance test for snapshot
// durability: a store killed mid-SaveFile at the faults.SiteSnapshot
// failpoint (between the temp fsync and the rename) must leave the
// previous complete snapshot at the canonical path — never a torn image
// — and the next save must land cleanly.
func TestSaveFileCrashBeforeRename(t *testing.T) {
	store, _ := advisedStore(t)
	path := filepath.Join(t.TempDir(), "store.legodb")
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate the store so an aborted second save would be observable.
	if _, err := store.InsertChild(
		`FOR $s IN imdb/show RETURN $s`, nil, `<aka>crash witness</aka>`); err != nil {
		t.Fatal(err)
	}
	defer faults.Enable(faults.SiteSnapshot, 1, false)()
	if err := store.SaveFile(path); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want injected crash, got %v", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("canonical path unreadable after aborted save: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("aborted save changed the canonical path")
	}
	restored, err := OpenStoreFile(path)
	if err != nil {
		t.Fatalf("previous snapshot does not reopen after aborted save: %v", err)
	}
	if got, want := restored.TotalRows(), len(before) > 0; want && got == 0 {
		t.Fatal("previous snapshot reopened empty")
	}

	// Failpoint budget spent: the retry publishes the new image.
	if err := store.SaveFile(path); err != nil {
		t.Fatalf("retry save: %v", err)
	}
	restored, err = OpenStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.TotalRows() != store.TotalRows() {
		t.Errorf("retried snapshot rows = %d, want %d", restored.TotalRows(), store.TotalRows())
	}
}

// TestOpenStoreFileQuarantinesTruncated covers the torn-write shape a
// crashing pre-fix writer could leave: a prefix of a valid snapshot.
// Every truncation point must be detected and quarantined.
func TestOpenStoreFileQuarantinesTruncated(t *testing.T) {
	store, _ := advisedStore(t)
	dir := t.TempDir()
	full := filepath.Join(dir, "full.legodb")
	if err := store.SaveFile(full); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 7, storeHeaderLen - 1, storeHeaderLen + 10, len(raw) / 2, len(raw) - 1} {
		path := filepath.Join(dir, fmt.Sprintf("cut%d.legodb", cut))
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := OpenStoreFile(path)
		if !errors.Is(err, ErrCorruptStoreSnapshot) {
			t.Errorf("truncation at %d: want ErrCorruptStoreSnapshot, got %v", cut, err)
			continue
		}
		if _, statErr := os.Stat(path + ".corrupt"); statErr != nil {
			t.Errorf("truncation at %d: not quarantined: %v", cut, statErr)
		}
	}
}

// writeV1Snapshot frames a legacy version-1 (gob rows) snapshot of the
// store, exactly as the pre-colfile writer did.
func writeV1Snapshot(t *testing.T, store *Store) []byte {
	t.Helper()
	store.mu.RLock()
	snap := storeSnapshot{SchemaText: store.schema.String()}
	for _, name := range store.catalog.Order {
		tbl := store.db.Table(name)
		cols := make([]string, len(tbl.Def.Columns))
		for i, c := range tbl.Def.Columns {
			cols[i] = c.Name
		}
		ts := tableSnapshot{Name: name, Columns: cols, NextID: tbl.PeekNextID()}
		n := tbl.NumRows()
		for pos := 0; pos < n; pos++ {
			ts.Rows = append(ts.Rows, tbl.Row(pos))
		}
		snap.Tables = append(snap.Tables, ts)
	}
	store.mu.RUnlock()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	var hdr [storeHeaderLen]byte
	copy(hdr[:8], storeMagic[:])
	binary.LittleEndian.PutUint16(hdr[8:10], storeSnapshotVersionGob)
	binary.LittleEndian.PutUint64(hdr[10:18], uint64(len(snap.Tables)))
	binary.LittleEndian.PutUint64(hdr[18:26], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[26:30], fsio.Checksum(payload.Bytes()))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())
	return buf.Bytes()
}

// TestSnapshotUpgradeV1RoundTrip proves the migration path: a legacy
// version-1 snapshot opens read-only, publishes byte-identical documents
// to the version-2 snapshot of the same store, and saving it again
// produces a version-2 file that round-trips.
func TestSnapshotUpgradeV1RoundTrip(t *testing.T) {
	store, doc := advisedStore(t)
	v1 := writeV1Snapshot(t, store)

	fromV1, err := OpenStore(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("open v1 snapshot: %v", err)
	}
	var v2 bytes.Buffer
	if err := store.Save(&v2); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint16(v2.Bytes()[8:10]); got != storeSnapshotVersion {
		t.Fatalf("Save wrote version %d, want %d", got, storeSnapshotVersion)
	}
	fromV2, err := OpenStore(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatalf("open v2 snapshot: %v", err)
	}

	docs1, err := fromV1.Publish()
	if err != nil {
		t.Fatal(err)
	}
	docs2, err := fromV2.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if len(docs1) != 1 || len(docs2) != 1 {
		t.Fatalf("published %d and %d documents, want 1 each", len(docs1), len(docs2))
	}
	if got1, got2 := docs1[0].String(), docs2[0].String(); got1 != got2 {
		t.Fatal("v1 and v2 snapshots publish different bytes")
	}
	if !xmltree.EqualCanonical(doc, docs1[0]) {
		t.Fatal("v1 snapshot publishes a different document than was loaded")
	}

	// Upgrading: re-saving the v1-loaded store writes v2, which reopens.
	var upgraded bytes.Buffer
	if err := fromV1.Save(&upgraded); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint16(upgraded.Bytes()[8:10]); got != storeSnapshotVersion {
		t.Fatalf("upgrade wrote version %d, want %d", got, storeSnapshotVersion)
	}
	back, err := OpenStore(bytes.NewReader(upgraded.Bytes()))
	if err != nil {
		t.Fatalf("upgraded snapshot does not reopen: %v", err)
	}
	docs3, err := back.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if docs3[0].String() != docs1[0].String() {
		t.Fatal("upgraded snapshot publishes different bytes")
	}
	// Id sequences survive the upgrade: post-upgrade inserts don't collide.
	if err := back.Load(imdb.Generate(imdb.GenOptions{Shows: 2, Seed: 77})); err != nil {
		t.Fatalf("Load after upgrade: %v", err)
	}
	if _, err := back.Publish(); err != nil {
		t.Fatalf("Publish after post-upgrade load: %v", err)
	}
}

// TestOpenStoreV2CorruptSegmentQuarantines flips a byte inside a colfile
// segment (past the frame header, so the frame checksum is recomputed to
// match) and demands the chunk-level checksum still catches it.
func TestOpenStoreV2CorruptSegmentQuarantines(t *testing.T) {
	store, _ := advisedStore(t)
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a byte in the middle of the payload (inside some table
	// segment) and re-stamp the frame checksum so only colfile-level
	// validation can object.
	payload := raw[storeHeaderLen:]
	payload[len(payload)/2] ^= 0x40
	binary.LittleEndian.PutUint32(raw[26:30], fsio.Checksum(payload))
	_, err := OpenStore(bytes.NewReader(raw))
	if !errors.Is(err, ErrCorruptStoreSnapshot) {
		t.Fatalf("forged frame checksum slipped past colfile validation: %v", err)
	}
}
