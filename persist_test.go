package legodb

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"legodb/internal/imdb"
	"legodb/internal/xmltree"
)

func advisedStore(t *testing.T) (*Store, *xmltree.Node) {
	t.Helper()
	eng, err := New(imdb.SchemaText)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetStatisticsText(imdb.Stats().String()); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddQuery("q", `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`, 1); err != nil {
		t.Fatal(err)
	}
	advice, err := eng.Advise(AdviseOptions{Strategy: GreedySI, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	store, err := advice.Open()
	if err != nil {
		t.Fatal(err)
	}
	doc := imdb.Generate(imdb.GenOptions{Shows: 40, Seed: 13})
	if err := store.Load(doc); err != nil {
		t.Fatal(err)
	}
	return store, doc
}

func TestSaveAndOpenStore(t *testing.T) {
	store, doc := advisedStore(t)
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := OpenStore(&buf)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	// Row counts survive.
	for _, name := range store.Tables() {
		if got, want := restored.TableRows(name), store.TableRows(name); got != want {
			t.Errorf("table %s: %d rows restored, want %d", name, got, want)
		}
	}
	// Queries answer identically.
	title := doc.Path("show", "title")[0].Text
	q := `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`
	orig, err := store.Query(q, Params{"c1": title})
	if err != nil {
		t.Fatal(err)
	}
	back, err := restored.Query(q, Params{"c1": title})
	if err != nil {
		t.Fatal(err)
	}
	if len(orig.Rows) == 0 || len(orig.Rows) != len(back.Rows) {
		t.Fatalf("rows: %d vs %d", len(orig.Rows), len(back.Rows))
	}
	// Publishing still round-trips.
	docs, err := restored.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualCanonical(doc, docs[0]) {
		t.Fatal("restored store publishes a different document")
	}
	// Inserts after restore continue the id sequence without collision.
	extra := imdb.Generate(imdb.GenOptions{Shows: 3, Seed: 99})
	if err := restored.Load(extra); err != nil {
		t.Fatalf("Load after restore: %v", err)
	}
	docs, err = restored.Publish()
	if err != nil {
		t.Fatalf("Publish after post-restore load: %v", err)
	}
	if len(docs) != 2 {
		t.Fatalf("documents after second load = %d", len(docs))
	}
}

func TestSaveFileRoundTrip(t *testing.T) {
	store, _ := advisedStore(t)
	path := filepath.Join(t.TempDir(), "store.legodb")
	if err := store.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	restored, err := OpenStoreFile(path)
	if err != nil {
		t.Fatalf("OpenStoreFile: %v", err)
	}
	if restored.DDL() != store.DDL() {
		t.Fatal("DDL changed across the file round trip")
	}
}

func TestOpenStoreRejectsGarbage(t *testing.T) {
	if _, err := OpenStore(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if _, err := OpenStoreFile("/nonexistent/path"); err == nil {
		t.Fatal("missing file accepted")
	}
}
