package legodb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"legodb/internal/imdb"
	"legodb/internal/xmltree"
)

func advisedStore(t *testing.T) (*Store, *xmltree.Node) {
	t.Helper()
	eng, err := New(imdb.SchemaText)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetStatisticsText(imdb.Stats().String()); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddQuery("q", `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`, 1); err != nil {
		t.Fatal(err)
	}
	advice, err := eng.Advise(AdviseOptions{Strategy: GreedySI, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	store, err := advice.Open()
	if err != nil {
		t.Fatal(err)
	}
	doc := imdb.Generate(imdb.GenOptions{Shows: 40, Seed: 13})
	if err := store.Load(doc); err != nil {
		t.Fatal(err)
	}
	return store, doc
}

func TestSaveAndOpenStore(t *testing.T) {
	store, doc := advisedStore(t)
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := OpenStore(&buf)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	// Row counts survive.
	for _, name := range store.Tables() {
		if got, want := restored.TableRows(name), store.TableRows(name); got != want {
			t.Errorf("table %s: %d rows restored, want %d", name, got, want)
		}
	}
	// Queries answer identically.
	title := doc.Path("show", "title")[0].Text
	q := `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`
	orig, err := store.Query(q, Params{"c1": title})
	if err != nil {
		t.Fatal(err)
	}
	back, err := restored.Query(q, Params{"c1": title})
	if err != nil {
		t.Fatal(err)
	}
	if len(orig.Rows) == 0 || len(orig.Rows) != len(back.Rows) {
		t.Fatalf("rows: %d vs %d", len(orig.Rows), len(back.Rows))
	}
	// Publishing still round-trips.
	docs, err := restored.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualCanonical(doc, docs[0]) {
		t.Fatal("restored store publishes a different document")
	}
	// Inserts after restore continue the id sequence without collision.
	extra := imdb.Generate(imdb.GenOptions{Shows: 3, Seed: 99})
	if err := restored.Load(extra); err != nil {
		t.Fatalf("Load after restore: %v", err)
	}
	docs, err = restored.Publish()
	if err != nil {
		t.Fatalf("Publish after post-restore load: %v", err)
	}
	if len(docs) != 2 {
		t.Fatalf("documents after second load = %d", len(docs))
	}
}

func TestSaveFileRoundTrip(t *testing.T) {
	store, _ := advisedStore(t)
	path := filepath.Join(t.TempDir(), "store.legodb")
	if err := store.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	restored, err := OpenStoreFile(path)
	if err != nil {
		t.Fatalf("OpenStoreFile: %v", err)
	}
	if restored.DDL() != store.DDL() {
		t.Fatal("DDL changed across the file round trip")
	}
}

func TestOpenStoreRejectsGarbage(t *testing.T) {
	if _, err := OpenStore(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if _, err := OpenStoreFile("/nonexistent/path"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestSnapshotFrameValidation corrupts a valid snapshot every way the
// header can catch — magic, version, truncation, payload bit-flip — and
// demands ErrCorruptStoreSnapshot before any reconstruction starts.
func TestSnapshotFrameValidation(t *testing.T) {
	store, _ := advisedStore(t)
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(name string, mutate func(b []byte) []byte) {
		t.Helper()
		b := append([]byte(nil), good...)
		b = mutate(b)
		_, err := OpenStore(bytes.NewReader(b))
		if !errors.Is(err, ErrCorruptStoreSnapshot) {
			t.Errorf("%s: want ErrCorruptStoreSnapshot, got %v", name, err)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	corrupt("bad version", func(b []byte) []byte { b[8] = 0x7f; return b })
	corrupt("truncated header", func(b []byte) []byte { return b[:storeHeaderLen-3] })
	corrupt("truncated payload", func(b []byte) []byte { return b[:len(b)-5] })
	corrupt("payload bit-flip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })
	corrupt("forged table count", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[10:18], 1<<40)
		return b
	})
	corrupt("forged payload length", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[18:26], uint64(maxStoreSnapshotBytes)+1)
		return b
	})

	// The pristine bytes still open.
	if _, err := OpenStore(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

// TestOpenStoreFileQuarantinesCorrupt is the regression test for the
// quarantine path: a corrupt snapshot file is moved aside to
// path+".corrupt" and the error names both the corruption and the
// quarantine location.
func TestOpenStoreFileQuarantinesCorrupt(t *testing.T) {
	store, _ := advisedStore(t)
	path := filepath.Join(t.TempDir(), "store.legodb")
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = OpenStoreFile(path)
	if !errors.Is(err, ErrCorruptStoreSnapshot) {
		t.Fatalf("want ErrCorruptStoreSnapshot, got %v", err)
	}
	if !strings.Contains(err.Error(), ".corrupt") {
		t.Errorf("error does not mention the quarantine: %v", err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Error("corrupt file still occupies the snapshot path")
	}
	if _, statErr := os.Stat(path + ".corrupt"); statErr != nil {
		t.Errorf("quarantined file missing: %v", statErr)
	}
	// The freed path accepts the next save, which then opens cleanly.
	if err := store.SaveFile(path); err != nil {
		t.Fatalf("SaveFile after quarantine: %v", err)
	}
	if _, err := OpenStoreFile(path); err != nil {
		t.Fatalf("reopen after quarantine: %v", err)
	}
}

// TestSaveRacesServing snapshots a store while queries and mutations
// hammer it (run under -race in CI): every snapshot must be internally
// consistent — it reopens cleanly and publishes valid documents.
func TestSaveRacesServing(t *testing.T) {
	store, _ := advisedStore(t)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan error, 16)
	report := func(op string, err error) {
		select {
		case fail <- fmt.Errorf("%s: %w", op, err):
		default:
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := store.Query(
				`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title`,
				Params{"c1": fmt.Sprint(1990 + i%20)}); err != nil {
				report("Query", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := store.InsertChild(
				`FOR $s IN imdb/show RETURN $s`, nil,
				fmt.Sprintf(`<aka>save race %d</aka>`, i)); err != nil {
				report("InsertChild", err)
				return
			}
		}
	}()

	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if err := store.Save(&buf); err != nil {
			t.Fatalf("Save %d under load: %v", i, err)
		}
		restored, err := OpenStore(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("snapshot %d taken under load does not reopen: %v", i, err)
		}
		if _, err := restored.Publish(); err != nil {
			t.Fatalf("snapshot %d does not publish: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
}
