module legodb

go 1.22
