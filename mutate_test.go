package legodb

import (
	"bytes"
	"testing"

	"legodb/internal/imdb"
)

func TestDeleteWhereCascades(t *testing.T) {
	store, doc := advisedStore(t)
	title := doc.Path("show", "title")[0].Text
	before := 0
	for _, tbl := range store.Tables() {
		before += store.TableRows(tbl)
	}
	n, err := store.DeleteWhere(
		`FOR $s IN imdb/show WHERE $s/title = c1 RETURN $s`, Params{"c1": title})
	if err != nil {
		t.Fatalf("DeleteWhere: %v", err)
	}
	if n < 1 {
		t.Fatalf("deleted %d rows", n)
	}
	// The show is gone from query results.
	res, err := store.Query(`FOR $s IN imdb/show WHERE $s/title = c1 RETURN $s/title`, Params{"c1": title})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("deleted show still queryable: %v", res.Rows)
	}
	// The published document no longer holds the show, and stays valid.
	docs, err := store.Publish()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range docs[0].Path("show", "title") {
		if s.Text == title {
			t.Fatal("deleted show resurrected by publish")
		}
	}
	after := 0
	for _, tbl := range store.Tables() {
		after += store.TableRows(tbl)
	}
	if after != before-n {
		t.Fatalf("row accounting off: %d - %d != %d", before, n, after)
	}
}

func TestDeleteWholeDocumentSubtree(t *testing.T) {
	store, _ := advisedStore(t)
	n, err := store.DeleteWhere(`FOR $i IN imdb RETURN $i`, nil)
	if err != nil {
		t.Fatalf("DeleteWhere root: %v", err)
	}
	if n < 100 {
		t.Fatalf("cascade deleted only %d rows", n)
	}
	for _, tbl := range store.Tables() {
		if got := store.TableRows(tbl); got != 0 {
			t.Errorf("table %s still holds %d rows", tbl, got)
		}
	}
	docs, err := store.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 0 {
		t.Fatalf("published %d documents from emptied store", len(docs))
	}
}

func TestInsertChild(t *testing.T) {
	store, doc := advisedStore(t)
	title := doc.Path("show", "title")[0].Text
	n, err := store.InsertChild(
		`FOR $s IN imdb/show WHERE $s/title = c1 RETURN $s`,
		Params{"c1": title},
		`<aka>Le Fugitif</aka>`)
	if err != nil {
		t.Fatalf("InsertChild: %v", err)
	}
	if n != 1 {
		t.Fatalf("inserted into %d parents", n)
	}
	res, err := store.Query(
		`FOR $s IN imdb/show, $a IN $s/aka WHERE $s/title = c1 RETURN $a`,
		Params{"c1": title})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		for _, cell := range row {
			if cell == "Le Fugitif" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("inserted aka not queryable: %v", res.Rows)
	}
	// The published document carries the new aka and stays schema-valid.
	docs, err := store.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if !imdb.Schema().Valid(docs[0]) {
		t.Fatal("document invalid after insert")
	}
}

func TestInsertChildRejectsForeignFragment(t *testing.T) {
	store, doc := advisedStore(t)
	title := doc.Path("show", "title")[0].Text
	if _, err := store.InsertChild(
		`FOR $s IN imdb/show WHERE $s/title = c1 RETURN $s`,
		Params{"c1": title},
		`<bogus>x</bogus>`); err == nil {
		t.Fatal("foreign fragment accepted")
	}
}

func TestDeleteWhereRejectsScalarTarget(t *testing.T) {
	store, _ := advisedStore(t)
	if _, err := store.DeleteWhere(`FOR $s IN imdb/show RETURN $s/title, $s/year`, nil); err == nil {
		t.Fatal("multi-item target accepted")
	}
}

func TestSnapshotCompactsTombstones(t *testing.T) {
	store, doc := advisedStore(t)
	title := doc.Path("show", "title")[0].Text
	if _, err := store.DeleteWhere(
		`FOR $s IN imdb/show WHERE $s/title = c1 RETURN $s`, Params{"c1": title}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := restored.Query(`FOR $s IN imdb/show WHERE $s/title = c1 RETURN $s/title`, Params{"c1": title})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatal("tombstoned row resurrected through a snapshot")
	}
}
