package legodb

import (
	"fmt"
	"sync"
	"testing"

	"legodb/internal/imdb"
)

// TestStoreConcurrentQueriesAndMutations hammers one store from reader
// goroutines (ad-hoc queries, prepared runs, publishing, stats) racing
// writer goroutines (child inserts, cascading deletes, extra document
// loads, executor-mode flips). Run under -race in CI: the store's
// readers-writer lock must make every interleaving safe, and every
// operation must succeed — mutations wait for queries, never corrupt
// them.
func TestStoreConcurrentQueriesAndMutations(t *testing.T) {
	eng, err := New(imdb.SchemaText)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetStatisticsText(imdb.StatsText); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddQuery("lookup",
		`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/year`, 1); err != nil {
		t.Fatal(err)
	}
	advice, err := eng.EvaluateFixed("all-inlined")
	if err != nil {
		t.Fatal(err)
	}
	store, err := advice.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Load(imdb.Generate(imdb.GenOptions{Shows: 40, Seed: 21})); err != nil {
		t.Fatal(err)
	}

	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	report := func(op string, err error) {
		if err != nil {
			select {
			case errs <- fmt.Errorf("%s: %w", op, err):
			default:
			}
		}
	}

	// Readers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pq, err := store.Prepare(`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title`)
			if err != nil {
				report("Prepare", err)
				return
			}
			for i := 0; i < iters; i++ {
				year := fmt.Sprint(1990 + (g*iters+i)%20)
				if _, err := store.Query(
					`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/year`,
					Params{"c1": year}); err != nil {
					report("Query", err)
				}
				if _, err := pq.Run(Params{"c1": year}); err != nil {
					report("Run", err)
				}
				store.Measured()
				if store.TotalRows() <= 0 {
					report("TotalRows", fmt.Errorf("no rows while serving"))
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/5; i++ {
			if _, err := store.Publish(); err != nil {
				report("Publish", err)
			}
		}
	}()

	// Writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := store.InsertChild(
				`FOR $s IN imdb/show WHERE $s/year = c1 RETURN $s`,
				Params{"c1": fmt.Sprint(1990 + i%20)},
				fmt.Sprintf(`<aka>alias %d</aka>`, i)); err != nil {
				report("InsertChild", err)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/5; i++ {
			if _, err := store.DeleteWhere(
				`FOR $s IN imdb/show WHERE $s/year = c1 RETURN $s`,
				Params{"c1": fmt.Sprint(1890 + i)}); err != nil { // years outside the data: cheap no-op deletes
				report("DeleteWhere", err)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/5; i++ {
			if err := store.Load(imdb.Generate(imdb.GenOptions{Shows: 2, Seed: int64(100 + i)})); err != nil {
				report("Load", err)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			store.SetRowAtATimeExec(i%2 == 1)
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	store.SetRowAtATimeExec(false)
	res, err := store.Query(`FOR $v IN imdb/show RETURN $v/title`, nil)
	if err != nil {
		t.Fatalf("query after hammering: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("store empty after hammering")
	}
}
