package legodb

import (
	"strings"
	"testing"

	"legodb/internal/imdb"
	"legodb/internal/xmltree"
)

const tinySchema = `
type IMDB = imdb[ Show{0,*} ]
type Show = show [ @type[ String ],
    title[ String ],
    year[ Integer ],
    Aka{0,*},
    ( Movie | TV ) ]
type Aka = aka[ String ]
type Movie = box_office[ Integer ], video_sales[ Integer ]
type TV = seasons[ Integer ], description[ String ] ]
`

const tinyStats = `
(["imdb"], STcnt(1));
(["imdb";"show"], STcnt(1000));
(["imdb";"show";"title"], STsize(50) STbase(0,0,1000));
(["imdb";"show";"year"], STbase(1800,2100,300));
(["imdb";"show";"aka"], STcnt(400) STsize(40));
(["imdb";"show";"box_office"], STcnt(700));
(["imdb";"show";"seasons"], STcnt(300));
(["imdb";"show";"description"], STsize(120));
`

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(strings.Replace(tinySchema, "description[ String ] ]", "description[ String ]", 1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := e.SetStatisticsText(tinyStats); err != nil {
		t.Fatalf("SetStatisticsText: %v", err)
	}
	return e
}

func TestEngineAdviseEndToEnd(t *testing.T) {
	e := newEngine(t)
	if err := e.AddQuery("lookup", `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`, 0.7); err != nil {
		t.Fatal(err)
	}
	if err := e.AddQuery("publish", `FOR $v IN imdb/show RETURN $v`, 0.3); err != nil {
		t.Fatal(err)
	}
	advice, err := e.Advise(AdviseOptions{Strategy: GreedySO})
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	if advice.Cost() <= 0 || advice.Cost() > advice.InitialCost() {
		t.Fatalf("cost = %g (initial %g)", advice.Cost(), advice.InitialCost())
	}
	if !strings.Contains(advice.DDL(), "TABLE") {
		t.Fatalf("DDL = %q", advice.DDL())
	}
	if !strings.Contains(advice.PSchema(), "type") {
		t.Fatalf("PSchema = %q", advice.PSchema())
	}
	if !strings.Contains(advice.SQL(), "SELECT") {
		t.Fatalf("SQL = %q", advice.SQL())
	}
	if tr := advice.Trace(); len(tr) < 1 || tr[0] != advice.InitialCost() {
		t.Fatalf("trace = %v", tr)
	}
	if !strings.Contains(advice.Explain(), "final cost") {
		t.Fatalf("Explain = %q", advice.Explain())
	}
}

const sampleXML = `<imdb>
  <show type="Movie">
    <title>Fugitive, The</title><year>1993</year>
    <aka>Auf der Flucht</aka>
    <box_office>183752965</box_office><video_sales>72450220</video_sales>
  </show>
  <show type="TVseries">
    <title>X Files, The</title><year>1994</year>
    <seasons>10</seasons><description>paranoia and aliens</description>
  </show>
</imdb>`

func TestStoreLoadQueryPublish(t *testing.T) {
	e := newEngine(t)
	if err := e.AddQuery("lookup", `FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title`, 1); err != nil {
		t.Fatal(err)
	}
	advice, err := e.Advise(AdviseOptions{Strategy: GreedySI})
	if err != nil {
		t.Fatal(err)
	}
	store, err := advice.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.LoadXML(strings.NewReader(sampleXML)); err != nil {
		t.Fatalf("LoadXML: %v", err)
	}
	res, err := store.Query(`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title`, Params{"c1": "1994"})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "X Files, The" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// String-parameter query.
	res, err = store.Query(`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/year`, Params{"c1": "Fugitive, The"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "1993" {
		t.Fatalf("rows = %v", res.Rows)
	}
	docs, err := store.Publish()
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	orig, _ := xmltree.ParseString(sampleXML)
	if len(docs) != 1 || !xmltree.EqualCanonical(orig, docs[0]) {
		t.Fatalf("publish round trip differs:\n%s", docs[0])
	}
	if c := store.Measured(); c.TuplesRead == 0 {
		t.Fatalf("no execution counters recorded: %+v", c)
	}
	if store.TableRows(store.Tables()[0]) < 0 {
		t.Fatal("TableRows failed on first table")
	}
	if out, err := store.ExplainQuery(`FOR $v IN imdb/show RETURN $v/title`); err != nil || !strings.Contains(out, "estimated cost") {
		t.Fatalf("ExplainQuery = %q, %v", out, err)
	}
}

func TestEvaluateFixedBaselines(t *testing.T) {
	e := newEngine(t)
	if err := e.AddQuery("publish", `FOR $v IN imdb/show RETURN $v`, 1); err != nil {
		t.Fatal(err)
	}
	inlined, err := e.EvaluateFixed("all-inlined")
	if err != nil {
		t.Fatal(err)
	}
	outlined, err := e.EvaluateFixed("all-outlined")
	if err != nil {
		t.Fatal(err)
	}
	if inlined.Cost() >= outlined.Cost() {
		t.Fatalf("all-inlined publish (%.1f) should beat all-outlined (%.1f)", inlined.Cost(), outlined.Cost())
	}
	if _, err := e.EvaluateFixed("nonsense"); err == nil {
		t.Fatal("unknown fixed config accepted")
	}
}

func TestAdviseRequiresWorkload(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Advise(AdviseOptions{}); err == nil {
		t.Fatal("Advise without workload accepted")
	}
}

func TestCollectStatisticsPath(t *testing.T) {
	e, err := New(strings.Replace(tinySchema, "description[ String ] ]", "description[ String ]", 1))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	e.CollectStatistics(doc)
	if err := e.AddQuery("q", `FOR $v IN imdb/show RETURN $v/title`, 1); err != nil {
		t.Fatal(err)
	}
	advice, err := e.Advise(AdviseOptions{Strategy: GreedySI})
	if err != nil {
		t.Fatalf("Advise with collected stats: %v", err)
	}
	if advice.Cost() <= 0 {
		t.Fatal("non-positive cost")
	}
}

// TestIMDBWorkloadAnswersMatchDocument is the full-pipeline correctness
// check: load generated IMDB data into the advised store and verify query
// answers against values computed directly on the XML tree.
func TestIMDBWorkloadAnswersMatchDocument(t *testing.T) {
	eng, err := New(imdb.SchemaText)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetStatisticsText(imdb.StatsText); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddQuery("Q3", `FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/year`, 1); err != nil {
		t.Fatal(err)
	}
	advice, err := eng.Advise(AdviseOptions{Strategy: GreedySI, MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	store, err := advice.Open()
	if err != nil {
		t.Fatal(err)
	}
	doc := imdb.Generate(imdb.GenOptions{Shows: 60, Seed: 21})
	if err := store.Load(doc); err != nil {
		t.Fatalf("Load: %v", err)
	}
	// Ground truth from the XML tree.
	wantYear := doc.Path("show", "year")[0].Text
	want := 0
	for _, y := range doc.Path("show", "year") {
		if y.Text == wantYear {
			want++
		}
	}
	res, err := store.Query(`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/year`, Params{"c1": wantYear})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != want {
		t.Fatalf("query returned %d rows, document has %d shows of year %s", len(res.Rows), want, wantYear)
	}
}

func TestPreparedQueryReuse(t *testing.T) {
	store, doc := advisedStore(t)
	p, err := store.Prepare(`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/year`)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if !strings.Contains(p.SQL(), "SELECT") {
		t.Fatalf("SQL = %q", p.SQL())
	}
	titles := doc.Path("show", "title")
	for i := 0; i < 3 && i < len(titles); i++ {
		res, err := p.Run(Params{"c1": titles[i].Text})
		if err != nil {
			t.Fatalf("Run %d: %v", i, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("no rows for %q", titles[i].Text)
		}
	}
	if _, err := store.Prepare(`FOR $v IN imdb/nosuch RETURN $v`); err == nil {
		t.Fatal("bad query prepared")
	}
}
