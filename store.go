package legodb

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"legodb/internal/core"
	"legodb/internal/engine"
	"legodb/internal/optimizer"
	"legodb/internal/relational"
	"legodb/internal/shred"
	"legodb/internal/sqlast"
	"legodb/internal/xmltree"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
)

// Store is an instantiated storage configuration: an in-memory relational
// database following the chosen mapping, with document loading, XQuery
// execution and publishing.
//
// A Store is safe for concurrent use: queries, prepared executions,
// publishing and stats reads run concurrently with each other, while
// mutations (Load, InsertChild, DeleteWhere) and executor-mode flips are
// serialized against them under a readers-writer lock — the serving
// layer's contract (one store per tenant, many concurrent requests).
type Store struct {
	// mu is the store's readers-writer lock: queries, publishing and
	// stats reads share it, mutations take it exclusively. The engine
	// below is safe for concurrent reads but not for reads racing writes.
	mu        sync.RWMutex
	schema    *xschema.Schema
	catalog   *relational.Catalog
	db        *engine.Database
	shredder  *shred.Shredder
	publisher *shred.Publisher
	opt       *optimizer.Optimizer

	// mutEpoch counts mutations (loads, deletes, inserts). A live
	// migration records it when publishing the old image and re-checks it
	// at cutover: a mismatch means the rebuilt image is stale and the
	// migration restarts instead of installing it.
	mutEpoch uint64

	// obs accumulates the observed workload from served traffic; it has
	// its own lock and survives migration (observation is a property of
	// the traffic, not of the storage configuration).
	obs *workloadObserver
}

// Open instantiates the advised configuration as an empty store.
func (a *Advice) Open() (*Store, error) {
	return openStore(a.result.Best.Schema, a.result.Best.Catalog)
}

func openStore(ps *xschema.Schema, cat *relational.Catalog) (*Store, error) {
	db := engine.NewDatabase(cat)
	return &Store{
		schema:    ps,
		catalog:   cat,
		db:        db,
		shredder:  shred.New(ps, cat, db),
		publisher: shred.NewPublisher(ps, cat, db),
		opt:       optimizer.New(cat),
		obs:       newWorkloadObserver(),
	}, nil
}

// Load shreds a document into the store. Documents must validate against
// the engine's schema.
func (s *Store) Load(doc *xmltree.Node) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mutEpoch++
	return s.shredder.Shred(doc)
}

// LoadXML parses and loads an XML document from a reader.
func (s *Store) LoadXML(r io.Reader) error {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return err
	}
	return s.Load(doc)
}

// Params binds query parameters (c1, c2, ...) to values. Each value
// binds according to the catalog type of the column the parameter is
// compared against in the translated query: parameters filtering an
// INT column bind as integers, parameters filtering a string column
// bind verbatim (so "007" matches a CHAR column storing "007" instead
// of being silently collapsed to the integer 7). A parameter with no
// comparison site in the query falls back to the digit heuristic:
// values that parse as integers bind as integers.
type Params map[string]string

// toEngine is the catalog-blind fallback: digit-shaped values bind as
// integers. Only used for parameters whose comparison site cannot be
// resolved; query and mutation execution bind through forBlocks.
func (p Params) toEngine() engine.Params {
	out := make(engine.Params, len(p))
	for k, v := range p {
		out[k] = looseValue(v)
	}
	return out
}

func looseValue(v string) engine.Value {
	if n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64); err == nil {
		return engine.IntVal(n)
	}
	return engine.StrVal(v)
}

// forBlocks binds each parameter by consulting the catalog type of the
// column it is compared against in the given blocks (the parameter's
// comparison site). INT-column parameters bind as integers when they
// parse — an unparseable value (overflow-length digits, non-numeric
// text) binds as a string and simply matches no stored integer.
// String-column parameters always bind verbatim, preserving leading
// zeros, surrounding spaces and overlong digit strings exactly as
// stored. Parameters without a site keep the loose heuristic.
func (p Params) forBlocks(cat *relational.Catalog, blocks ...*sqlast.Block) engine.Params {
	sites := paramColumnTypes(cat, blocks)
	out := make(engine.Params, len(p))
	for k, v := range p {
		ct, found := sites[k]
		switch {
		case found && ct == relational.IntCol:
			if n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64); err == nil {
				out[k] = engine.IntVal(n)
			} else {
				out[k] = engine.StrVal(v)
			}
		case found:
			out[k] = engine.StrVal(v)
		default:
			out[k] = looseValue(v)
		}
	}
	return out
}

// paramColumnTypes maps each parameter name to the catalog type of its
// first comparison site across the blocks (alias → table via the
// block's FROM list, then column lookup in the catalog). Sites that
// cannot be resolved are omitted.
func paramColumnTypes(cat *relational.Catalog, blocks []*sqlast.Block) map[string]relational.ColumnType {
	sites := make(map[string]relational.ColumnType)
	if cat == nil {
		return sites
	}
	for _, b := range blocks {
		if b == nil {
			continue
		}
		tableOf := make(map[string]string, len(b.Tables))
		for _, t := range b.Tables {
			if _, ok := tableOf[t.Alias]; !ok {
				tableOf[t.Alias] = t.Table
			}
		}
		for _, f := range b.Filters {
			if !f.Value.IsParam || f.RightCol != nil {
				continue
			}
			if _, seen := sites[f.Value.Param]; seen {
				continue
			}
			tbl := cat.Table(tableOf[f.Col.Alias])
			if tbl == nil {
				continue
			}
			for _, col := range tbl.Columns {
				if col.Name == f.Col.Column {
					sites[f.Value.Param] = col.Type
					break
				}
			}
		}
	}
	return sites
}

// SetRowAtATimeExec switches this store's executor between the default
// vectorized batch implementation (false) and the reference
// row-at-a-time iterator (true). The two return identical results and
// maintain identical Counters — the row path is kept as the baseline
// the batch executor's differential tests and speedup benchmarks run
// against.
func (s *Store) SetRowAtATimeExec(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.Exec = engine.Options{RowAtATime: on}
}

// Result is a query result: column headers and stringified rows.
type Result struct {
	Columns []string
	Rows    [][]string
}

// Query parses, translates and executes an XQuery against the store.
func (s *Store) Query(text string, params Params) (*Result, error) {
	return s.QueryContext(context.Background(), text, params)
}

// QueryContext is Query under a caller-controlled context: cancelling
// ctx (or exceeding its deadline) aborts the execution mid-plan with the
// context's error, so a served request's timeout actually stops engine
// work instead of letting it run to completion.
func (s *Store) QueryContext(ctx context.Context, text string, params Params) (*Result, error) {
	p, err := s.Prepare(text)
	if err != nil {
		return nil, err
	}
	return p.RunContext(ctx, params)
}

// PreparedQuery is a parsed and translated query, reusable with
// different parameters; repeated executions skip parsing and
// translation.
type PreparedQuery struct {
	store *Store
	q     *xquery.Query
	// shape is the parsed query with its report name stripped — the
	// observation key each successful execution is recorded under.
	shape *xquery.Query

	// planMu guards the cached translation. The plan is bound to the
	// catalog it was translated against; when a live migration swaps the
	// store's configuration, the next execution re-translates against
	// the new one instead of running a stale plan.
	planMu sync.Mutex
	sql    *sqlast.Query
	cat    *relational.Catalog
}

// Prepare parses and translates an XQuery once for repeated execution.
func (s *Store) Prepare(text string) (*PreparedQuery, error) {
	q, err := xquery.Parse(text)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	schema, catalog := s.schema, s.catalog
	s.mu.RUnlock()
	sq, err := xquery.Translate(q, schema, catalog)
	if err != nil {
		return nil, err
	}
	shape, _ := queryShape(q)
	return &PreparedQuery{store: s, q: q, shape: shape, sql: sq, cat: catalog}, nil
}

// planLocked returns the translated plan for the store's current
// configuration, re-translating when a migration has swapped the
// catalog since the last execution. The caller holds the store's read
// lock, pinning schema and catalog for the duration.
func (p *PreparedQuery) planLocked(s *Store) (*sqlast.Query, error) {
	p.planMu.Lock()
	defer p.planMu.Unlock()
	if p.cat != s.catalog {
		sq, err := xquery.Translate(p.q, s.schema, s.catalog)
		if err != nil {
			return nil, err
		}
		p.sql, p.cat = sq, s.catalog
	}
	return p.sql, nil
}

// SQL returns the prepared query's translated SQL (for the configuration
// it was last executed or prepared against).
func (p *PreparedQuery) SQL() string {
	p.planMu.Lock()
	defer p.planMu.Unlock()
	return p.sql.SQL()
}

// Run executes the prepared query with the given parameters.
func (p *PreparedQuery) Run(params Params) (*Result, error) {
	return p.RunContext(context.Background(), params)
}

// RunContext executes the prepared query under a caller-controlled
// context (see Store.QueryContext).
func (p *PreparedQuery) RunContext(ctx context.Context, params Params) (*Result, error) {
	s := p.store
	s.mu.RLock()
	sql, err := p.planLocked(s)
	if err != nil {
		s.mu.RUnlock()
		return nil, err
	}
	rs, err := s.db.ExecuteContext(ctx, sql, params.forBlocks(s.catalog, sql.Blocks...))
	s.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	// Record the observation outside the serving lock: a successful
	// execution is one vote for this query shape in the observed
	// workload.
	s.obs.observeQuery(p.shape)
	out := &Result{Columns: rs.Columns}
	for _, row := range rs.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		out.Rows = append(out.Rows, cells)
	}
	return out, nil
}

// ExplainQuery translates an XQuery and returns its SQL together with the
// optimizer's cost estimate.
func (s *Store) ExplainQuery(text string) (string, error) {
	q, err := xquery.Parse(text)
	if err != nil {
		return "", err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sq, err := xquery.Translate(q, s.schema, s.catalog)
	if err != nil {
		return "", err
	}
	est, err := s.opt.QueryCost(sq)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s\n-- estimated cost: %.1f, rows: %.0f\n", sq.SQL(), est.Cost, est.Rows), nil
}

// Publish reconstructs all loaded documents.
func (s *Store) Publish() ([]*xmltree.Node, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.publisher.PublishAll()
}

// DDL returns the store's relational schema.
func (s *Store) DDL() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.catalog.SQL()
}

// PSchema renders the store's current physical schema in algebra
// notation (statistics annotations included) — comparable against
// Advice.PSchema to tell whether an advised configuration is already
// installed.
func (s *Store) PSchema() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.schema.String()
}

// Documents reports the number of loaded documents (live rows of the
// root type's relation; 0 when the root relation does not exist).
func (s *Store) Documents() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.db.Table(s.catalog.TableOf[s.schema.Root])
	if t == nil {
		return 0
	}
	return t.LiveRows()
}

// TableRows reports the number of live rows stored in a relation (-1
// when the relation does not exist).
func (s *Store) TableRows(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t := s.db.Table(name)
	if t == nil {
		return -1
	}
	return t.LiveRows()
}

// Tables lists the store's relations in creation order.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.catalog.Order...)
}

// Measured returns the engine's accumulated execution counters (bytes
// read, tuples, probes) since the store was opened.
func (s *Store) Measured() engine.Counters {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Measured()
}

// EstimatedCost prices the store's current physical schema under a
// workload (typically the observed one) with the optimizer's cost model,
// through eng's cost cache — the "is the installed configuration still
// the right one?" half of the adaptation loop's comparison. documents
// is the stored document count (0 = 1).
func (s *Store) EstimatedCost(eng *Engine, w *xquery.Workload, documents float64) (float64, error) {
	s.mu.RLock()
	ps := s.schema
	s.mu.RUnlock()
	if documents == 0 {
		documents = 1
	}
	return core.GetPSchemaCostWith(ps, w, documents, nil, eng.snapshotCache())
}

// TotalRows sums live rows over the store's relations.
func (s *Store) TotalRows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.RowCount()
}
