package legodb

import (
	"sync"

	"legodb/internal/xquery"
)

// Workload observation: the store accumulates an observed workload from
// the traffic it actually serves, so the advisor can be re-run against
// reality instead of the declared workload (the adaptation loop's first
// layer). Each executed query or mutation contributes one observation to
// its shape — the name-stripped canonical rendering, the same text the
// cost cache digests — and the shape's weight is its observed frequency.
//
// Weights age out under a generation decay: every window observations,
// all weights halve and shapes that have decayed to noise are pruned.
// The policy is counted in observations, not wall-clock time, so it is
// deterministic under test and indifferent to idle periods.

// observeWindow is the decay period: after this many observations every
// shape's weight halves.
const observeWindow = 1024

// observePruneBelow drops a shape once decay has pushed its weight under
// this bound (a shape seen once is gone after ~11 windows of silence).
const observePruneBelow = 0.5

type observedShape struct {
	query  *xquery.Query
	update *xquery.Update
	weight float64
}

// workloadObserver accumulates shape frequencies. It has its own mutex —
// observations are recorded after the store's lock is released, so a
// slow observer can never extend the serving critical section.
type workloadObserver struct {
	mu     sync.Mutex
	shapes map[string]*observedShape
	order  []string // insertion order: ObservedWorkload is deterministic
	total  uint64   // observations recorded since the store opened
	window int      // observations since the last decay
}

func newWorkloadObserver() *workloadObserver {
	return &workloadObserver{shapes: make(map[string]*observedShape)}
}

// queryShape returns the name-stripped copy of q and its canonical text.
// Stripping the name makes the shape key insensitive to report labels
// ("(: Q1 :)" comments), so the same query text observed from different
// callers lands on one shape.
func queryShape(q *xquery.Query) (*xquery.Query, string) {
	c := *q
	c.Name = ""
	return &c, c.String()
}

func (o *workloadObserver) observeQuery(q *xquery.Query) {
	shape, key := queryShape(q)
	o.record("q"+key, func() *observedShape { return &observedShape{query: shape} })
}

// updateShape returns the name-stripped copy of u and its canonical
// text, symmetric with queryShape: the observed workload must not alias
// caller memory, and an update shape must not keep the first caller's
// report label ("(: W1 :)" comments).
func updateShape(u *xquery.Update) (*xquery.Update, string) {
	c := *u
	c.Name = ""
	return &c, c.String()
}

func (o *workloadObserver) observeUpdate(u *xquery.Update) {
	shape, key := updateShape(u)
	o.record("u"+key, func() *observedShape { return &observedShape{update: shape} })
}

func (o *workloadObserver) record(key string, mk func() *observedShape) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s := o.shapes[key]
	if s == nil {
		s = mk()
		o.shapes[key] = s
		o.order = append(o.order, key)
	}
	s.weight++
	o.total++
	o.window++
	if o.window >= observeWindow {
		o.decayLocked()
	}
}

// decayLocked halves every weight and prunes shapes that fell below the
// noise floor, compacting the order slice in place.
func (o *workloadObserver) decayLocked() {
	o.window = 0
	kept := o.order[:0]
	for _, key := range o.order {
		s := o.shapes[key]
		s.weight /= 2
		if s.weight < observePruneBelow {
			delete(o.shapes, key)
			continue
		}
		kept = append(kept, key)
	}
	o.order = kept
}

// workload snapshots the observed shapes as a weighted workload, in
// first-observed order.
func (o *workloadObserver) workload() (*xquery.Workload, uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	w := &xquery.Workload{}
	for _, key := range o.order {
		s := o.shapes[key]
		if s.query != nil {
			w.Add(s.query, s.weight)
		} else {
			w.AddUpdate(s.update, s.weight)
		}
	}
	return w, o.total
}

// ObservedWorkload snapshots the workload the store has actually served:
// one entry per distinct query/mutation shape, weighted by decayed
// observation frequency, plus the total number of observations recorded.
// The snapshot is independent of the store — the adaptation loop can
// digest, cost and search it while traffic keeps accumulating.
func (s *Store) ObservedWorkload() (*xquery.Workload, uint64) {
	return s.obs.workload()
}
