package legodb

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (each runs the generator + parameter sweep + cost
// evaluation that regenerates the artifact; the rows themselves are
// printed by `go run ./cmd/experiments`), plus ablation and component
// micro-benchmarks.

import (
	"context"
	"math/rand"
	"testing"

	"legodb/internal/core"
	"legodb/internal/engine"
	"legodb/internal/experiments"
	"legodb/internal/imdb"
	"legodb/internal/pschema"
	"legodb/internal/relational"
	"legodb/internal/shred"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(name)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig6StorageMaps regenerates Figure 6: Q1–Q4 and W1/W2 costs
// under the three storage mappings of Figure 4.
func BenchmarkFig6StorageMaps(b *testing.B) { benchExperiment(b, "fig6") }

// benchGreedy runs the Figure 10 searches (both workloads) per
// iteration, either against one cost cache shared across the whole
// benchmark or fully uncached, and reports the evaluator traffic:
// evals/op counts full cost-pipeline runs, hits/op the candidate
// costings answered from memory, translations/op the per-query
// translate+cost runs the incremental layer could not avoid.
func benchGreedy(b *testing.B, strategy core.Strategy, cache *core.CostCache, incremental bool) {
	b.Helper()
	var evals, hits, translations, qhits, qmisses uint64
	for i := 0; i < b.N; i++ {
		for _, wl := range []*xquery.Workload{imdb.LookupWorkload(), imdb.PublishWorkload()} {
			opts := core.Options{Strategy: strategy, DisableIncremental: !incremental}
			if cache != nil {
				opts.Cache = cache
			} else {
				opts.DisableCache = true
			}
			res, err := core.GreedySearch(context.Background(), imdb.Schema(), wl, imdb.Stats(), opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Best.Cost > res.InitialCost {
				b.Fatal("search worsened cost")
			}
			evals += res.Evals
			hits += res.Cache.Hits
			translations += res.Translations
			qhits += res.QueryCacheHits
			qmisses += res.QueryCacheMisses
		}
	}
	b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
	b.ReportMetric(float64(hits)/float64(b.N), "hits/op")
	b.ReportMetric(float64(translations)/float64(b.N), "translations/op")
	if qhits+qmisses > 0 {
		b.ReportMetric(100*float64(qhits)/float64(qhits+qmisses), "qcache-hit-%")
	}
}

// BenchmarkFig10GreedySO regenerates the greedy-so convergence series of
// Figure 10 (both workloads; the SI series is measured separately below),
// with the cost cache shared across iterations — after the first search
// warms it, later runs pay only the per-iteration winner
// materializations.
func BenchmarkFig10GreedySO(b *testing.B) {
	benchGreedy(b, core.GreedySO, core.NewCostCache(0), true)
}

// BenchmarkFig10GreedySOFullEval turns the incremental layers off (every
// evaluation re-translates the whole workload) but keeps the cost cache.
func BenchmarkFig10GreedySOFullEval(b *testing.B) {
	benchGreedy(b, core.GreedySO, core.NewCostCache(0), false)
}

// BenchmarkFig10GreedySOUncached is the memoization-off baseline: every
// candidate pays a full evaluator pipeline run, as the paper's prototype
// did.
func BenchmarkFig10GreedySOUncached(b *testing.B) { benchGreedy(b, core.GreedySO, nil, false) }

// BenchmarkFig10GreedySI regenerates the greedy-si convergence series of
// Figure 10 (cached; see the SO variants for the cache setup).
func BenchmarkFig10GreedySI(b *testing.B) {
	benchGreedy(b, core.GreedySI, core.NewCostCache(0), true)
}

// BenchmarkFig10GreedySIFullEval is greedy-si with the incremental
// layers off.
func BenchmarkFig10GreedySIFullEval(b *testing.B) {
	benchGreedy(b, core.GreedySI, core.NewCostCache(0), false)
}

// BenchmarkFig10GreedySIUncached is greedy-si with memoization off.
func BenchmarkFig10GreedySIUncached(b *testing.B) { benchGreedy(b, core.GreedySI, nil, false) }

// benchFig11 regenerates the Figure 11 sweep with the experiments
// package's shared cache on or off, reporting its hit/miss traffic.
func benchFig11(b *testing.B, cached bool) {
	b.Helper()
	experiments.EnableCache(cached)
	defer experiments.EnableCache(true)
	start := experiments.CacheStats()
	benchExperiment(b, "fig11")
	st := experiments.CacheStats().Sub(start)
	b.ReportMetric(float64(st.Hits)/float64(b.N), "hits/op")
	b.ReportMetric(float64(st.Misses)/float64(b.N), "misses/op")
}

// BenchmarkFig11Sensitivity regenerates Figure 11: the workload-mix
// sensitivity sweep with C[0.25]/C[0.50]/C[0.75], ALL-INLINED and OPT.
// The sweep's 15 searches overlap heavily, so the shared cache absorbs
// most of the cost.
func BenchmarkFig11Sensitivity(b *testing.B) { benchFig11(b, true) }

// BenchmarkFig11SensitivityUncached is the sweep with memoization off.
func BenchmarkFig11SensitivityUncached(b *testing.B) { benchFig11(b, false) }

// BenchmarkFig13UnionDistribution regenerates Figure 13: the
// union-transformed configuration against all-inlined on Figure 12's
// queries.
func BenchmarkFig13UnionDistribution(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14RepetitionSplit regenerates Figure 14: the aka
// repetition-split sweep.
func BenchmarkFig14RepetitionSplit(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkTable2Wildcard regenerates Table 2: wildcard materialization
// under varying review counts and NYT fractions.
func BenchmarkTable2Wildcard(b *testing.B) { benchExperiment(b, "tab2") }

// BenchmarkAblationThreshold measures the early-stopping ablation.
func BenchmarkAblationThreshold(b *testing.B) { benchExperiment(b, "ablation-threshold") }

// BenchmarkAblationSIvsSO measures the starting-point ablation.
func BenchmarkAblationSIvsSO(b *testing.B) { benchExperiment(b, "ablation-si-vs-so") }

// BenchmarkAblationCostModelValidation measures the estimate-vs-engine
// agreement experiment (shreds generated data and executes the
// workload).
func BenchmarkAblationCostModelValidation(b *testing.B) { benchExperiment(b, "ablation-costmodel") }

// BenchmarkAblationBeam measures the greedy-vs-beam search ablation.
func BenchmarkAblationBeam(b *testing.B) { benchExperiment(b, "ablation-beam") }

// BenchmarkAblationUpdates measures the update-workload ablation.
func BenchmarkAblationUpdates(b *testing.B) { benchExperiment(b, "ablation-updates") }

// --- component micro-benchmarks ---

// BenchmarkGreedyIteration measures one full greedy-search run on the
// paper's lookup workload (the ~3s/iteration loop of Section 5.2 runs in
// milliseconds here).
func BenchmarkGreedyIteration(b *testing.B) {
	schema := imdb.Schema()
	stats := imdb.Stats()
	wl := imdb.LookupWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedySearch(context.Background(), schema, wl, stats, core.Options{Strategy: core.GreedySO, MaxIterations: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateConfiguration measures one GetPSchemaCost round trip:
// p-schema -> relations+statistics -> SQL -> optimizer.
func BenchmarkEvaluateConfiguration(b *testing.B) {
	s := imdb.AnnotatedSchema()
	ps, err := pschema.AllInlined(s)
	if err != nil {
		b.Fatal(err)
	}
	wl := imdb.LookupWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GetPSchemaCost(ps, wl, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslateWorkload measures XQuery-to-SQL translation of the
// complete Appendix C workload.
func BenchmarkTranslateWorkload(b *testing.B) {
	s := imdb.AnnotatedSchema()
	ps, err := pschema.AllInlined(s)
	if err != nil {
		b.Fatal(err)
	}
	cat, err := relational.Map(ps)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]*xquery.Query, 0, len(imdb.QueryNames()))
	for _, name := range imdb.QueryNames() {
		queries = append(queries, imdb.Query(name))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := xquery.Translate(q, ps, cat); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkShredIMDB measures document shredding throughput.
func BenchmarkShredIMDB(b *testing.B) {
	s := imdb.AnnotatedSchema()
	ps, err := pschema.AllInlined(s)
	if err != nil {
		b.Fatal(err)
	}
	cat, err := relational.Map(ps)
	if err != nil {
		b.Fatal(err)
	}
	doc := imdb.Generate(imdb.GenOptions{Shows: 100, Seed: 5})
	b.SetBytes(int64(len(doc.String())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := engine.NewDatabase(cat)
		if err := shred.New(ps, cat, db).Shred(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublishIMDB measures document reconstruction throughput.
func BenchmarkPublishIMDB(b *testing.B) {
	s := imdb.AnnotatedSchema()
	ps, err := pschema.AllInlined(s)
	if err != nil {
		b.Fatal(err)
	}
	cat, err := relational.Map(ps)
	if err != nil {
		b.Fatal(err)
	}
	doc := imdb.Generate(imdb.GenOptions{Shows: 100, Seed: 5})
	db := engine.NewDatabase(cat)
	if err := shred.New(ps, cat, db).Shred(doc); err != nil {
		b.Fatal(err)
	}
	pub := shred.NewPublisher(ps, cat, db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pub.PublishAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteLookup measures engine execution of a translated
// lookup query.
func BenchmarkExecuteLookup(b *testing.B) {
	s := imdb.AnnotatedSchema()
	ps, err := pschema.AllInlined(s)
	if err != nil {
		b.Fatal(err)
	}
	cat, err := relational.Map(ps)
	if err != nil {
		b.Fatal(err)
	}
	doc := imdb.Generate(imdb.GenOptions{Shows: 300, Seed: 5})
	db := engine.NewDatabase(cat)
	if err := shred.New(ps, cat, db).Shred(doc); err != nil {
		b.Fatal(err)
	}
	q := xquery.MustParse(`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`)
	sq, err := xquery.Translate(q, ps, cat)
	if err != nil {
		b.Fatal(err)
	}
	title := doc.Path("show", "title")[0].Text
	params := engine.Params{"c1": engine.StrVal(title)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute(sq, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFingerprint measures the canonical fingerprint of the IMDB
// schema — the per-candidate overhead the cost cache adds to a search.
func BenchmarkFingerprint(b *testing.B) {
	s := imdb.AnnotatedSchema()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fp := s.Fingerprint(); fp == (xschema.Fingerprint{}) {
			b.Fatal("zero fingerprint")
		}
	}
}

// BenchmarkValidateDocument measures schema validation.
func BenchmarkValidateDocument(b *testing.B) {
	s := imdb.Schema()
	doc := imdb.Generate(imdb.GenOptions{Shows: 100, Seed: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ValidateDocument(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectStatistics measures statistics collection from data.
func BenchmarkCollectStatistics(b *testing.B) {
	doc := imdb.Generate(imdb.GenOptions{Shows: 100, Seed: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := xstats.Collect(doc)
		if set.Count("imdb", "show") != 100 {
			b.Fatal("bad collection")
		}
	}
}

// BenchmarkGenerateRandomDocument measures the random document generator
// used by the property tests.
func BenchmarkGenerateRandomDocument(b *testing.B) {
	s := imdb.Schema()
	g := xschema.NewGenerator(s, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}
