package legodb

import (
	"strings"
	"testing"
)

// Regression tests for typed parameter binding: parameters must bind by
// the catalog type of the column they filter, not by whether the value
// happens to look like an integer. Before the fix, Params{"c1": "007"}
// against a string column bound as the integer 7, which the engine
// compared as "7" — silently matching nothing.

const paramXML = `<imdb>
  <show type="Movie">
    <title>007</title><year>1962</year>
    <box_office>59600000</box_office><video_sales>100</video_sales>
  </show>
  <show type="Movie">
    <title>99999999999999999999999999</title><year>2001</year>
    <box_office>1</box_office><video_sales>2</video_sales>
  </show>
</imdb>`

func paramStore(t *testing.T) *Store {
	t.Helper()
	e := newEngine(t)
	if err := e.AddQuery("bytitle", `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/year`, 1); err != nil {
		t.Fatal(err)
	}
	advice, err := e.Advise(AdviseOptions{Strategy: GreedySI, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	store, err := advice.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.LoadXML(strings.NewReader(paramXML)); err != nil {
		t.Fatal(err)
	}
	return store
}

func TestParamLeadingZeroMatchesStringColumn(t *testing.T) {
	store := paramStore(t)
	res, err := store.Query(`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/year`,
		Params{"c1": "007"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "1962" {
		t.Fatalf("title '007' returned %v, want the 1962 show (leading zeros must survive binding)", res.Rows)
	}
}

func TestParamOverflowDigitsMatchStringColumn(t *testing.T) {
	store := paramStore(t)
	res, err := store.Query(`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/year`,
		Params{"c1": "99999999999999999999999999"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "2001" {
		t.Fatalf("overlong digit title returned %v, want the 2001 show", res.Rows)
	}
}

func TestParamOverflowDigitsOnIntColumnMatchNothing(t *testing.T) {
	// A value no INT column can store must execute cleanly and return
	// zero rows, not error or mis-bind.
	store := paramStore(t)
	res, err := store.Query(`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title`,
		Params{"c1": "99999999999999999999999999"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("overflow-length literal on an INT column matched %v", res.Rows)
	}
}

func TestParamIntColumnStillBindsInteger(t *testing.T) {
	store := paramStore(t)
	res, err := store.Query(`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title`,
		Params{"c1": "1962"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "007" {
		t.Fatalf("year 1962 returned %v", res.Rows)
	}
}

func TestDeleteWhereBindsByColumnType(t *testing.T) {
	// The mutation path shares the typed binding: deleting by a
	// leading-zero title must find its target.
	store := paramStore(t)
	n, err := store.DeleteWhere(`FOR $s IN imdb/show WHERE $s/title = c1 RETURN $s`,
		Params{"c1": "007"})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("DeleteWhere with a leading-zero string parameter removed nothing")
	}
	res, err := store.Query(`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/year`,
		Params{"c1": "007"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("deleted show still answers: %v", res.Rows)
	}
}
