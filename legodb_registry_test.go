package legodb

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func fleetSchemaText() string {
	return strings.Replace(tinySchema, "description[ String ] ]", "description[ String ]", 1)
}

// fleetVariants are the tenant workloads of the differential fleet: the
// first two tenants share most of their search space (same schema, one
// extra query), the third is publish-heavy.
var fleetVariants = [][]struct {
	name, text string
	weight     float64
}{
	{
		{"lookup", `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/year`, 1},
	},
	{
		{"lookup", `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/year`, 0.6},
		{"byyear", `FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title`, 0.4},
	},
	{
		{"publish", `FOR $v IN imdb/show RETURN $v`, 1},
	},
}

func fleetEngineAt(t *testing.T, r *Registry, variant int) *Engine {
	t.Helper()
	e, err := NewWithOptions(fleetSchemaText(), Options{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetStatisticsText(tinyStats); err != nil {
		t.Fatal(err)
	}
	for _, q := range fleetVariants[variant] {
		if err := e.AddQuery(q.name, q.text, q.weight); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// TestFleetDifferentialRegistryOnOff is the safety contract of the
// cross-engine registry: sharing a cost cache across a fleet must change
// nothing about what each tenant's search decides. For greedy and beam,
// sequential and parallel costing, a fleet advised through one registry
// must produce byte-identical winners, traces and DDL to the same fleet
// advised with private caches.
func TestFleetDifferentialRegistryOnOff(t *testing.T) {
	advise := func(r *Registry, beam, workers int) []string {
		var out []string
		for v := range fleetVariants {
			e := fleetEngineAt(t, r, v)
			a, err := e.Advise(AdviseOptions{
				Strategy: GreedySO, BeamWidth: beam, Workers: workers,
			})
			if err != nil {
				t.Fatalf("variant %d (beam=%d workers=%d): %v", v, beam, workers, err)
			}
			out = append(out,
				a.PSchema(),
				a.DDL(),
				fmt.Sprintf("%v", a.Trace()),
				fmt.Sprintf("%.6f", a.Cost()),
			)
		}
		return out
	}
	for _, beam := range []int{0, 3} {
		for _, workers := range []int{1, 8} {
			off := advise(nil, beam, workers)
			on := advise(NewRegistry(), beam, workers)
			for i := range off {
				if off[i] != on[i] {
					t.Fatalf("beam=%d workers=%d: registry changed outcome %d:\n--- off ---\n%s\n--- on ---\n%s",
						beam, workers, i, off[i], on[i])
				}
			}
		}
	}
}

// TestRegistrySecondEngineHitRate: a second tenant with the same schema
// and workload as the first must answer at least half of its costings
// from the fleet cache the first tenant warmed.
func TestRegistrySecondEngineHitRate(t *testing.T) {
	r := NewRegistry()
	e1 := fleetEngineAt(t, r, 0)
	e2 := fleetEngineAt(t, r, 0)
	a1, err := e1.Advise(AdviseOptions{Strategy: GreedySO})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e2.Advise(AdviseOptions{Strategy: GreedySO})
	if err != nil {
		t.Fatal(err)
	}
	if a1.DDL() != a2.DDL() || a1.Cost() != a2.Cost() {
		t.Fatal("identical tenants advised different configurations")
	}
	st := a2.CacheStats()
	if ratio := st.HitRatio(); ratio < 0.5 {
		t.Fatalf("second tenant hit ratio = %.2f (%d hits, %d misses), want ≥ 0.5",
			ratio, st.Hits, st.Misses)
	}
	rs := r.Stats()
	if rs.Engines != 2 {
		t.Fatalf("registry reports %d engines, want 2", rs.Engines)
	}
	if rs.Cache.Hits == 0 {
		t.Fatal("fleet-wide counters recorded no hits")
	}
	if e2.CacheStats().Hits != st.Hits {
		t.Fatalf("engine cumulative hits %d != advice delta hits %d",
			e2.CacheStats().Hits, st.Hits)
	}
}

// TestFleetConcurrentBaselineSingleflight: M tenants concurrently
// costing the identical baseline through one registry must perform the
// work once — one cache entry appears, and every non-leader is answered
// by a hit or a singleflight dedup.
func TestFleetConcurrentBaselineSingleflight(t *testing.T) {
	const M = 6
	r := NewRegistry()
	engines := make([]*Engine, M)
	for i := range engines {
		engines[i] = fleetEngineAt(t, r, 0)
	}
	start := r.Stats().Cache

	costs := make([]float64, M)
	var barrier, done sync.WaitGroup
	barrier.Add(1)
	for i := range engines {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			barrier.Wait()
			a, err := engines[i].EvaluateFixed("all-inlined")
			if err != nil {
				t.Errorf("engine %d: %v", i, err)
				return
			}
			costs[i] = a.Cost()
		}(i)
	}
	barrier.Done()
	done.Wait()

	for i := 1; i < M; i++ {
		if costs[i] != costs[0] {
			t.Fatalf("engine %d costed %g, engine 0 costed %g", i, costs[i], costs[0])
		}
	}
	delta := r.Stats().Cache.Sub(start)
	if delta.Entries != 1 {
		t.Fatalf("fleet stored %d cache entries for one configuration", delta.Entries)
	}
	if delta.Hits+delta.Dedups != M-1 {
		t.Fatalf("hits %d + dedups %d != %d non-leaders (delta %+v)",
			delta.Hits, delta.Dedups, M-1, delta)
	}
}

// TestEngineSettersRaceAdvise is the -race proof of the Engine
// concurrency contract: setters mutating the description while searches
// snapshot it must neither race nor corrupt either side.
func TestEngineSettersRaceAdvise(t *testing.T) {
	e := fleetEngineAt(t, nil, 0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := e.AddQuery(fmt.Sprintf("extra%d", i),
				`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title`, 0.05); err != nil {
				t.Errorf("AddQuery: %v", err)
			}
			if err := e.SetStatisticsText(tinyStats); err != nil {
				t.Errorf("SetStatisticsText: %v", err)
			}
			e.CacheStats()
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				a, err := e.Advise(AdviseOptions{Strategy: GreedySO, MaxIterations: 2})
				if err != nil {
					t.Errorf("Advise: %v", err)
					return
				}
				if a.Cost() <= 0 {
					t.Errorf("cost = %g", a.Cost())
				}
			}
		}()
	}
	wg.Wait()
}

// TestEvaluateFixedDocumentsAndStats regresses the two EvaluateFixed
// bugs: the document count was hardcoded to 1, and the returned Advice
// dropped the statistics the costing was computed from.
func TestEvaluateFixedDocumentsAndStats(t *testing.T) {
	e := fleetEngineAt(t, nil, 2)
	base, err := e.EvaluateFixed("all-inlined")
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := e.EvaluateFixed("all-inlined", AdviseOptions{Documents: 50})
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Cost() <= base.Cost() {
		t.Fatalf("50 documents cost %g, not above single-document cost %g",
			scaled.Cost(), base.Cost())
	}
	if base.stats == nil || scaled.stats == nil {
		t.Fatal("EvaluateFixed dropped the engine statistics from the Advice")
	}
	// Repeating a baseline hits the engine cache; Documents is part of
	// the key, so the two baselines never cross-hit.
	again, err := e.EvaluateFixed("all-inlined", AdviseOptions{Documents: 50})
	if err != nil {
		t.Fatal(err)
	}
	if again.Cost() != scaled.Cost() {
		t.Fatalf("repeated baseline costed %g, first run %g", again.Cost(), scaled.Cost())
	}
	if st := again.CacheStats(); st.Hits == 0 {
		t.Fatalf("repeated baseline missed the engine cache: %+v", st)
	}
	uncached, err := e.EvaluateFixed("all-inlined", AdviseOptions{Documents: 50, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if uncached.Cost() != scaled.Cost() {
		t.Fatalf("uncached baseline costed %g, cached %g", uncached.Cost(), scaled.Cost())
	}
}
