package legodb

import (
	"fmt"
	"time"

	"legodb/internal/engine"
	"legodb/internal/faults"
	"legodb/internal/optimizer"
	"legodb/internal/relational"
	"legodb/internal/shred"
	"legodb/internal/xmltree"
	"legodb/internal/xschema"
)

// Live migration: rebuild the store's relational image under a new
// advised configuration while the old image keeps serving, then cut over
// under the store's write lock. The rebuild is publish-from-old +
// shred-into-new — the round-trip pair the tests already prove lossless
// — performed table-group-by-table-group with targeted shredding
// (shred.Shredder.Restrict), entirely off the serving path: queries and
// mutations only ever contend with the final cutover swap, which is a
// pointer exchange.
//
// Consistency against concurrent mutations uses the store's mutation
// epoch: the migrator records it when publishing the old image and
// re-checks it at cutover. A mismatch means traffic changed the
// documents mid-rebuild, so the stale image is discarded and the rebuild
// restarts; after MaxRestarts futile attempts the final rebuild runs
// while holding the write lock (correctness over availability under
// pathological churn). A failed or aborted migration — including one
// killed by the faults.SiteMigrate failpoint at any group boundary or at
// cutover itself — leaves the old image untouched and serving.

// MigrateOptions tunes a live migration; the zero value uses the
// defaults noted per field.
type MigrateOptions struct {
	// TablesPerGroup is the number of new-catalog tables rebuilt per
	// targeted shredding pass (default 4). The SiteMigrate failpoint
	// fires once before each group and once at cutover.
	TablesPerGroup int
	// MaxRestarts bounds how many times the migration restarts after a
	// concurrent mutation invalidated the rebuilt image (default 3)
	// before falling back to rebuilding under the write lock.
	MaxRestarts int
}

func (o MigrateOptions) withDefaults() MigrateOptions {
	if o.TablesPerGroup <= 0 {
		o.TablesPerGroup = 4
	}
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 3
	}
	return o
}

// MigrateReport describes a completed migration.
type MigrateReport struct {
	// Groups is the number of table groups rebuilt by the winning
	// attempt.
	Groups int
	// Documents is the number of documents re-shredded.
	Documents int
	// Restarts counts attempts invalidated by concurrent mutations.
	Restarts int
	// RebuiltUnderLock is true when restart attempts were exhausted and
	// the final rebuild ran while holding the store's write lock.
	RebuiltUnderLock bool
	// Cutover is how long the write lock was held for the swap (or for
	// the whole locked rebuild when RebuiltUnderLock).
	Cutover time.Duration
}

// MigrateTo rebuilds the store under an advised configuration and cuts
// over live. On any error — shredding failure, injected fault, panic —
// the store is left exactly as it was, still serving the old image.
func (s *Store) MigrateTo(a *Advice, opts ...MigrateOptions) (rep *MigrateReport, err error) {
	var o MigrateOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	o = o.withDefaults()
	defer func() {
		// A panic anywhere in the rebuild must not take the store down
		// with it: nothing is installed until the cutover swap, so
		// recovering here leaves the old image serving.
		if p := recover(); p != nil {
			rep, err = nil, fmt.Errorf("legodb: migrate: panic: %v", p)
		}
	}()
	newPS := a.result.Best.Schema
	newCat := a.result.Best.Catalog
	if newPS == nil || newCat == nil {
		return nil, fmt.Errorf("legodb: migrate: advice carries no materialized configuration")
	}
	rep = &MigrateReport{}
	for attempt := 0; ; attempt++ {
		newDB, docs, epoch, err := s.rebuildOffline(newPS, newCat, o.TablesPerGroup, rep)
		if err != nil {
			return nil, err
		}
		final := attempt >= o.MaxRestarts
		done, err := s.tryCutover(newPS, newCat, newDB, epoch, final, rep)
		if err != nil {
			return nil, err
		}
		if done {
			if !rep.RebuiltUnderLock {
				rep.Documents = docs
			}
			return rep, nil
		}
		// Concurrent traffic mutated the documents after we published
		// them: the rebuilt image is stale. Rebuild and try again.
		rep.Restarts++
	}
}

// tryCutover takes the write lock and installs the rebuilt database if
// the mutation epoch still matches. On a mismatch it reports not-done
// (the caller restarts) — unless final, in which case it rebuilds right
// there under the write lock, so no mutation can slip in, and installs
// that. The lock is released by defer so an injected panic at the
// cutover failpoint unwinds cleanly (recovered in MigrateTo, store
// untouched and unlocked).
func (s *Store) tryCutover(ps *xschema.Schema, cat *relational.Catalog, db *engine.Database, epoch uint64, final bool, rep *MigrateReport) (bool, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := faults.Inject(faults.SiteMigrate); err != nil {
		return false, fmt.Errorf("legodb: migrate cutover: %w", err)
	}
	if s.mutEpoch != epoch {
		if !final {
			return false, nil
		}
		// Restart budget exhausted: correctness over availability.
		freshDocs, err := s.publisher.PublishAll()
		if err != nil {
			return false, fmt.Errorf("legodb: migrate locked rebuild: %w", err)
		}
		lockedDB := engine.NewDatabase(cat)
		sh := shred.New(ps, cat, lockedDB)
		for _, d := range freshDocs {
			if err := sh.Shred(d); err != nil {
				return false, fmt.Errorf("legodb: migrate locked rebuild: %w", err)
			}
		}
		rep.RebuiltUnderLock = true
		rep.Documents = len(freshDocs)
		db = lockedDB
	}
	s.swapLocked(ps, cat, db)
	rep.Cutover = time.Since(start)
	return true, nil
}

// rebuildOffline publishes the old image (under the read lock, so
// serving continues) and rebuilds it into a fresh database under the new
// configuration, one table group at a time. Each group pass shreds the
// full document set into its own staging database with materialization
// restricted to the group's tables: ids are allocated identically in
// every pass (NextID burns whether or not a row is kept), so the merged
// image is byte-identical to a single unrestricted shred.
func (s *Store) rebuildOffline(ps *xschema.Schema, cat *relational.Catalog, perGroup int, rep *MigrateReport) (*engine.Database, int, uint64, error) {
	s.mu.RLock()
	epoch := s.mutEpoch
	docs, err := s.publisher.PublishAll()
	s.mu.RUnlock()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("legodb: migrate publish: %w", err)
	}
	newDB := engine.NewDatabase(cat)
	groups := 0
	for i := 0; i < len(cat.Order); i += perGroup {
		end := i + perGroup
		if end > len(cat.Order) {
			end = len(cat.Order)
		}
		group := cat.Order[i:end]
		if err := faults.Inject(faults.SiteMigrate); err != nil {
			return nil, 0, 0, fmt.Errorf("legodb: migrate group %v: %w", group, err)
		}
		if err := shredGroup(ps, cat, docs, group, newDB); err != nil {
			return nil, 0, 0, err
		}
		groups++
	}
	rep.Groups = groups
	return newDB, len(docs), epoch, nil
}

// shredGroup rebuilds one table group: a restricted shred of every
// document into a staging database, then a merge of just the group's
// tables (rows and key allocators) into dst.
func shredGroup(ps *xschema.Schema, cat *relational.Catalog, docs []*xmltree.Node, group []string, dst *engine.Database) error {
	staging := engine.NewDatabase(cat)
	sh := shred.New(ps, cat, staging)
	sh.Restrict = make(map[string]bool, len(group))
	for _, name := range group {
		sh.Restrict[name] = true
	}
	for _, d := range docs {
		if err := sh.Shred(d); err != nil {
			return fmt.Errorf("legodb: migrate reshred: %w", err)
		}
	}
	for _, name := range group {
		st := staging.Table(name)
		t := dst.Table(name)
		for _, row := range st.Rows {
			if err := t.Insert(row); err != nil {
				return fmt.Errorf("legodb: migrate merge %s: %w", name, err)
			}
		}
		t.SetNextID(st.PeekNextID())
	}
	return nil
}

// swapLocked installs the new configuration; the caller holds the write
// lock. The executor mode and accumulated counters carry over, and the
// workload observer is untouched — observation is a property of the
// traffic, not the storage layout.
func (s *Store) swapLocked(ps *xschema.Schema, cat *relational.Catalog, db *engine.Database) {
	db.Exec = s.db.Exec
	db.Stats = s.db.Measured()
	s.schema = ps
	s.catalog = cat
	s.db = db
	s.shredder = shred.New(ps, cat, db)
	s.publisher = shred.NewPublisher(ps, cat, db)
	s.opt = optimizer.New(cat)
}
