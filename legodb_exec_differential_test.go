package legodb

import (
	"testing"

	"legodb/internal/imdb"
	"legodb/internal/xmltree"
)

// Store-level batch-vs-rows differential: two stores opened from the
// same advice and loaded with the same document, one on the vectorized
// batch executor and one on the reference row-at-a-time path, driven
// through the same script of queries and mutations (DeleteWhere's
// target scan and cascade, InsertChild's parent scan). After every step
// the results, per-table live row counts and accumulated engine
// counters must agree exactly.
func TestStoreExecutorsDifferential(t *testing.T) {
	eng, err := New(imdb.SchemaText)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetStatisticsText(imdb.Stats().String()); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddQuery("q", `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`, 1); err != nil {
		t.Fatal(err)
	}
	advice, err := eng.Advise(AdviseOptions{Strategy: GreedySI, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	open := func(rowAtATime bool) (*Store, *xmltree.Node) {
		store, err := advice.Open()
		if err != nil {
			t.Fatal(err)
		}
		store.SetRowAtATimeExec(rowAtATime)
		doc := imdb.Generate(imdb.GenOptions{Shows: 40, Seed: 13})
		if err := store.Load(doc); err != nil {
			t.Fatal(err)
		}
		return store, doc
	}
	batch, doc := open(false)
	rows, _ := open(true)

	titles := doc.Path("show", "title")
	title0, title1 := titles[0].Text, titles[1].Text
	year := doc.Path("show", "year")[0].Text

	queries := []struct {
		name, src string
		params    Params
	}{
		{"lookup-title", `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`, Params{"c1": title0}},
		{"lookup-year", `FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title`, Params{"c1": year}},
		{"publish-shows", `FOR $v IN imdb/show RETURN $v`, nil},
		{"episodes", `FOR $v IN imdb/show RETURN <r> $v/title FOR $e IN $v/episodes WHERE $e/guest_director = c4 RETURN $e/name </r>`, Params{"c4": "nobody"}},
	}

	compareState := func(t *testing.T, step string) {
		t.Helper()
		for _, name := range batch.Tables() {
			if got, want := batch.TableRows(name), rows.TableRows(name); got != want {
				t.Errorf("%s: table %s: batch=%d rows=%d live rows", step, name, got, want)
			}
		}
		if batch.Measured() != rows.Measured() {
			t.Errorf("%s: counters diverge:\n batch=%+v\n rows =%+v", step, batch.Measured(), rows.Measured())
		}
	}
	runQueries := func(t *testing.T, step string) {
		t.Helper()
		for _, q := range queries {
			rb, errB := batch.Query(q.src, q.params)
			rr, errR := rows.Query(q.src, q.params)
			if (errB != nil) != (errR != nil) {
				t.Fatalf("%s/%s: error mismatch: batch=%v rows=%v", step, q.name, errB, errR)
			}
			if errB != nil {
				continue
			}
			if len(rb.Rows) != len(rr.Rows) {
				t.Fatalf("%s/%s: batch=%d rows=%d result rows", step, q.name, len(rb.Rows), len(rr.Rows))
			}
			seen := make(map[string]int, len(rr.Rows))
			for _, r := range rr.Rows {
				seen[rowKey(r)]++
			}
			for _, r := range rb.Rows {
				k := rowKey(r)
				if seen[k] == 0 {
					t.Fatalf("%s/%s: batch row %v missing from rows result", step, q.name, r)
				}
				seen[k]--
			}
		}
		compareState(t, step)
	}

	runQueries(t, "loaded")

	for _, st := range []*Store{batch, rows} {
		if n, err := st.InsertChild(
			`FOR $s IN imdb/show WHERE $s/title = c1 RETURN $s`,
			Params{"c1": title0}, `<aka>Alias</aka>`); err != nil || n == 0 {
			t.Fatalf("InsertChild: n=%d err=%v", n, err)
		}
	}
	runQueries(t, "after-insert")

	deleted := make([]int, 0, 2)
	for _, st := range []*Store{batch, rows} {
		n, err := st.DeleteWhere(
			`FOR $s IN imdb/show WHERE $s/title = c1 RETURN $s`, Params{"c1": title1})
		if err != nil || n == 0 {
			t.Fatalf("DeleteWhere: n=%d err=%v", n, err)
		}
		deleted = append(deleted, n)
	}
	if deleted[0] != deleted[1] {
		t.Fatalf("DeleteWhere removed %d rows on batch, %d on rows", deleted[0], deleted[1])
	}
	runQueries(t, "after-delete")

	// Both stores publish the same canonical documents after the script.
	db, err := batch.Publish()
	if err != nil {
		t.Fatal(err)
	}
	dr, err := rows.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if len(db) != len(dr) {
		t.Fatalf("published %d vs %d documents", len(db), len(dr))
	}
	for i := range db {
		if !xmltree.EqualCanonical(db[i], dr[i]) {
			t.Fatalf("published document %d diverges between executors", i)
		}
	}
}

func rowKey(cells []string) string {
	k := ""
	for _, c := range cells {
		k += "|" + c
	}
	return k
}
